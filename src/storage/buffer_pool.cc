#include "storage/buffer_pool.h"

#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "obs/clock.h"
#include "obs/event_log.h"
#include "storage/wal.h"

namespace clipbb::storage {

namespace {

/// Stable page-id -> shard mix (fmix64); sequential page ids must not all
/// land in one stripe.
uint64_t MixPageId(PageId id) {
  uint64_t x = static_cast<uint64_t>(id);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x;
}

/// Shard index of a page, for event-log attribution (the pin paths hold a
/// Shard& but not its index; recomputing the mix is cheaper than carrying
/// the index through every signature).
uint32_t ShardIndexOf(size_t n_shards, PageId id) {
  if (n_shards <= 1) return 0;
  return static_cast<uint32_t>(MixPageId(id) % n_shards);
}

}  // namespace

BufferPool::BufferPool(size_t capacity) : capacity_(capacity) {
  shards_.push_back(std::make_unique<Shard>());
  shards_[0]->capacity = capacity;
}

BufferPool::BufferPool(size_t capacity, PageFile* file, unsigned shards)
    : capacity_(capacity), file_(file) {
  size_t n = shards > 0 ? shards : 1;
  // Every shard must own at least one frame, or a stripe of a bounded
  // pool would be unable to evict (capacity 0 means "never evict").
  if (capacity > 0 && n > capacity) n = capacity;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shards_[i]->capacity = capacity / n + (i < capacity % n ? 1 : 0);
  }
}

BufferPool::~BufferPool() {
  if (file_) FlushAll();
}

BufferPool::Shard& BufferPool::ShardFor(PageId id) {
  if (shards_.size() == 1) return *shards_[0];
  return *shards_[MixPageId(id) % shards_.size()];
}

const BufferPool::Shard& BufferPool::ShardFor(PageId id) const {
  if (shards_.size() == 1) return *shards_[0];
  return *shards_[MixPageId(id) % shards_.size()];
}

uint64_t BufferPool::Sum(uint64_t Shard::*counter) const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    total += (*s).*counter;
  }
  return total;
}

size_t BufferPool::size() const {
  size_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    total += s->map.size();
  }
  return total;
}

bool BufferPool::Resident(PageId id) const {
  const Shard& s = ShardFor(id);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.map.contains(id);
}

void BufferPool::MoveToFront(Shard& s, PageId id, Frame& f) {
  if (f.in_lru) s.lru.erase(f.lru_it);
  s.lru.push_front(id);
  f.lru_it = s.lru.begin();
  f.in_lru = true;
}

void BufferPool::NoteGrowth(Shard& s) {
  if (s.map.size() > s.high_water) s.high_water = s.map.size();
}

bool BufferPool::Access(PageId id) {
  Shard& s = ShardFor(id);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.map.find(id);
  if (it != s.map.end()) {
    ++s.hits;
    if (it->second.in_lru) MoveToFront(s, id, it->second);
    return true;
  }
  ++s.misses;
  if (s.capacity == 0) return false;
  if (s.map.size() >= s.capacity) EvictOne(s, nullptr);
  Frame& f = s.map[id];
  NoteGrowth(s);
  MoveToFront(s, id, f);
  return false;
}

bool BufferPool::LoadFrame(Shard& s, PageId id, std::byte* dst, PinIo* io,
                           Status* status) {
  // Pages whose newest committed image lives only in the WAL (read-only
  // redo overlay) never touch the file. An overlay image is plain memory:
  // re-reading it cannot change the outcome, so a verify rejection is
  // final with no retry. The handle is grabbed once — a concurrent
  // SetReadOverlay swap cannot change the map mid-read.
  if (auto overlay = OverlayRef()) {
    auto oit = overlay->find(id);
    if (oit != overlay->end()) {
      std::memcpy(dst, oit->second.data(), file_->page_size());
      if (verifier_) {
        const Status v = verifier_(id, dst);
        if (!v.ok()) {
          obs::EventLog::Global().Record(
              obs::EventKind::kChecksumReject, id,
              ShardIndexOf(shards_.size(), id), ErrorKindName(v.kind));
          if (status) *status = v;
          return false;
        }
      }
      return true;
    }
  }
  Status last{ErrorKind::kIo, id};
  for (unsigned attempt = 0; attempt <= kMaxReadRetries; ++attempt) {
    if (attempt > 0) {
      ++s.read_retries;
      if (io) ++io->read_retries;
      // Tiny linear backoff before re-reading. This sleeps holding the
      // shard latch — deliberate: the page is mid-fault, and any thread
      // blocked on this stripe would only re-attempt the same read.
      std::this_thread::sleep_for(std::chrono::microseconds(50) * attempt);
    }
    switch (file_->ReadPageDetailed(id, dst)) {
      case PageReadResult::kOk:
        break;
      case PageReadResult::kEof:
        // Deterministic: the page lies past EOF; re-reading cannot help.
        if (status) *status = Status{ErrorKind::kEof, id};
        return false;
      case PageReadResult::kShortRead:
        last = Status{ErrorKind::kShortRead, id};
        if (io) ++io->reads;  // the retry is another physical attempt
        continue;
      case PageReadResult::kIoError:
        last = Status{ErrorKind::kIo, id};
        if (io) ++io->reads;
        continue;
    }
    if (verifier_) {
      const Status v = verifier_(id, dst);
      if (!v.ok()) {
        obs::EventLog::Global().Record(
            obs::EventKind::kChecksumReject, id,
            ShardIndexOf(shards_.size(), id), ErrorKindName(v.kind));
        if (v.kind == ErrorKind::kCorruptStructure) {
          // Checksum passed but the contents are impossible: the bytes on
          // disk are wrong, not the transfer. No retry.
          if (status) *status = v;
          return false;
        }
        last = v;
        if (io) ++io->reads;
        continue;
      }
    }
    return true;
  }
  // PinIo::reads over-counted the last attempt's replacement read that
  // never happened; drop it so reads matches file reads exactly.
  if (io) --io->reads;
  obs::EventLog::Global().Record(obs::EventKind::kRetryExhausted, id,
                                 ShardIndexOf(shards_.size(), id),
                                 ErrorKindName(last.kind), kMaxReadRetries);
  if (status) *status = last;
  return false;
}

std::byte* BufferPool::PinImpl(PageId id, bool dirty, PinIo* io,
                               Status* status) {
  assert(file_ != nullptr && file_->page_size() > 0);
  // One clock read per pin: starts before the latch, so the recorded
  // latency includes latch wait (the contention is part of what the
  // histogram is for). Recorded under the latch into plain per-shard
  // histograms — same no-atomics discipline as the counters.
  const uint64_t t0 = obs::NowNs();
  Shard& s = ShardFor(id);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.map.find(id);
  if (it != s.map.end() && it->second.loaded) {
    Frame& f = it->second;
    ++s.hits;
    if (f.in_lru) {  // pinned frames leave the LRU (never evictable)
      s.lru.erase(f.lru_it);
      f.in_lru = false;
    }
    ++f.pins;
    f.dirty |= dirty;
    s.pin_hit_ns.Record(obs::NowNs() - t0);
    return f.data.get();
  }
  if (s.quarantined.contains(id)) {
    // Known-bad page: fail fast without touching the file, so one rotten
    // page cannot stall every query that brushes against it.
    if (status) *status = Status{ErrorKind::kQuarantined, id};
    return nullptr;
  }
  ++s.misses;
  if (io) ++io->reads;
  if (it == s.map.end()) {
    // Evict down to capacity before adding a frame; if every frame is
    // pinned the shard grows transiently (Unpin shrinks it back).
    if (s.capacity > 0 && s.map.size() >= s.capacity) EvictOne(s, io);
    it = s.map.try_emplace(id).first;
    NoteGrowth(s);
  }
  Frame& f = it->second;
  if (f.in_lru) {
    s.lru.erase(f.lru_it);
    f.in_lru = false;
  }
  if (!f.data) f.data.reset(new std::byte[file_->page_size()]);
  // The shard latch is held across the fetch, so a second thread pinning
  // the same page waits here and then takes the hit path — the source is
  // read exactly once per residency.
  Status load_status;
  if (!LoadFrame(s, id, f.data.get(), io, &load_status)) {
    s.map.erase(it);
    // Exhausted retries (or an unretryable failure): quarantine, except
    // for EOF — an out-of-range pin is a caller bug, not a bad page.
    if (quarantine_enabled_ && load_status.kind != ErrorKind::kEof) {
      s.quarantined.insert(id);
      obs::EventLog::Global().Record(obs::EventKind::kQuarantine, id,
                                     ShardIndexOf(shards_.size(), id),
                                     ErrorKindName(load_status.kind));
    }
    const uint64_t dt = obs::NowNs() - t0;
    s.pin_miss_ns.Record(dt);
    if (io) io->miss_ns += dt;
    if (status) *status = load_status;
    return nullptr;
  }
  f.loaded = true;
  f.pins = 1;
  f.dirty = dirty;
  f.lsn = 0;
  const uint64_t dt = obs::NowNs() - t0;
  s.pin_miss_ns.Record(dt);
  if (io) io->miss_ns += dt;
  return f.data.get();
}

const std::byte* BufferPool::Pin(PageId id, PinIo* io, Status* status) {
  return PinImpl(id, false, io, status);
}

std::byte* BufferPool::PinForWrite(PageId id, PinIo* io, Status* status) {
  return PinImpl(id, true, io, status);
}

std::byte* BufferPool::PinNew(PageId id, PinIo* io) {
  assert(file_ != nullptr && file_->page_size() > 0);
  Shard& s = ShardFor(id);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.map.find(id);
  if (it == s.map.end()) {
    if (s.capacity > 0 && s.map.size() >= s.capacity) EvictOne(s, io);
    it = s.map.try_emplace(id).first;
    NoteGrowth(s);
  }
  Frame& f = it->second;
  if (f.in_lru) {
    s.lru.erase(f.lru_it);
    f.in_lru = false;
  }
  if (!f.data) f.data.reset(new std::byte[file_->page_size()]);
  std::memset(f.data.get(), 0, file_->page_size());
  f.loaded = true;
  f.pins += 1;
  f.dirty = true;
  f.lsn = 0;
  return f.data.get();
}

void BufferPool::Unpin(PageId id, bool dirty, uint64_t lsn, PinIo* io) {
  Shard& s = ShardFor(id);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.map.find(id);
  assert(it != s.map.end() && it->second.pins > 0);
  if (it == s.map.end()) return;
  Frame& f = it->second;
  f.dirty |= dirty;
  if (lsn > f.lsn) f.lsn = lsn;
  if (f.pins > 0 && --f.pins == 0) {
    MoveToFront(s, id, f);
    // Shrink any transient overage created while everything was pinned.
    while (s.capacity > 0 && s.map.size() > s.capacity) {
      if (!EvictOne(s, io)) break;
    }
  }
}

void BufferPool::OverwritePinned(PageId id, const std::byte* src) {
  assert(file_ != nullptr && file_->page_size() > 0);
  Shard& s = ShardFor(id);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.map.find(id);
  assert(it != s.map.end() && it->second.pins > 0 && it->second.loaded);
  if (it == s.map.end() || !it->second.data) return;
  std::memcpy(it->second.data.get(), src, file_->page_size());
}

bool BufferPool::RefreshResident(PageId id, const std::byte* src) {
  assert(file_ != nullptr && file_->page_size() > 0);
  Shard& s = ShardFor(id);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.map.find(id);
  if (it == s.map.end() || !it->second.loaded || !it->second.data) {
    return false;
  }
  std::memcpy(it->second.data.get(), src, file_->page_size());
  return true;
}

bool BufferPool::ReadPageCopy(PageId id, std::byte* dst, PinIo* io,
                              Status* status) {
  assert(file_ != nullptr && file_->page_size() > 0);
  const uint64_t t0 = obs::NowNs();
  Shard& s = ShardFor(id);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.map.find(id);
  if (it != s.map.end() && it->second.loaded) {
    ++s.hits;
    if (it->second.in_lru) MoveToFront(s, id, it->second);
    std::memcpy(dst, it->second.data.get(), file_->page_size());
    s.pin_hit_ns.Record(obs::NowNs() - t0);
    return true;
  }
  if (s.quarantined.contains(id)) {
    if (status) *status = Status{ErrorKind::kQuarantined, id};
    return false;
  }
  ++s.misses;
  if (io) ++io->reads;
  if (it == s.map.end()) {
    if (s.capacity > 0 && s.map.size() >= s.capacity) EvictOne(s, io);
    it = s.map.try_emplace(id).first;
    NoteGrowth(s);
  }
  Frame& f = it->second;
  if (!f.data) f.data.reset(new std::byte[file_->page_size()]);
  Status load_status;
  if (!LoadFrame(s, id, f.data.get(), io, &load_status)) {
    s.map.erase(it);
    if (quarantine_enabled_ && load_status.kind != ErrorKind::kEof) {
      s.quarantined.insert(id);
      obs::EventLog::Global().Record(obs::EventKind::kQuarantine, id,
                                     ShardIndexOf(shards_.size(), id),
                                     ErrorKindName(load_status.kind));
    }
    const uint64_t dt = obs::NowNs() - t0;
    s.pin_miss_ns.Record(dt);
    if (io) io->miss_ns += dt;
    if (status) *status = load_status;
    return false;
  }
  f.loaded = true;
  f.dirty = false;
  f.lsn = 0;
  std::memcpy(dst, f.data.get(), file_->page_size());
  MoveToFront(s, id, f);  // enters the LRU unpinned
  const uint64_t dt = obs::NowNs() - t0;
  s.pin_miss_ns.Record(dt);
  if (io) io->miss_ns += dt;
  return true;
}

bool BufferPool::ReadForCapture(PageId id, std::byte* dst, bool* from_file) {
  assert(file_ != nullptr && file_->page_size() > 0);
  Shard& s = ShardFor(id);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.map.find(id);
  if (it != s.map.end() && it->second.loaded) {
    std::memcpy(dst, it->second.data.get(), file_->page_size());
    if (from_file) *from_file = false;
    return true;
  }
  if (from_file) *from_file = true;
  if (auto overlay = OverlayRef()) {
    auto oit = overlay->find(id);
    if (oit != overlay->end()) {
      std::memcpy(dst, oit->second.data(), file_->page_size());
      if (from_file) *from_file = false;
      return true;
    }
  }
  // Not resident: the file copy is current (dirty frames only leave the
  // pool via write-back), so a direct read is exact.
  return file_->ReadPage(id, dst);
}

bool BufferPool::WriteBack(Shard& s, PageId id, Frame& f, PinIo* io) {
  // WAL rule: the record covering these bytes must be durable before the
  // page file sees them; otherwise a crash after this write leaves a page
  // no committed log prefix can explain. The Wal latches internally, so
  // concurrent shards racing to the sync serialize there (the loser sees
  // durable_lsn already advanced and its Sync is a cheap no-op).
  if (wal_ != nullptr && f.lsn > wal_->durable_lsn()) {
    ++s.wal_forced_syncs;
    if (io) ++io->wal_syncs;
    if (!wal_->Sync()) {
      ++s.write_failures;  // cannot write back without breaking the rule
      obs::EventLog::Global().Record(obs::EventKind::kWriteFailure, id,
                                     ShardIndexOf(shards_.size(), id),
                                     "wal-sync-failed");
      return false;
    }
  }
  if (!file_->WritePage(id, f.data.get())) {
    ++s.write_failures;
    obs::EventLog::Global().Record(obs::EventKind::kWriteFailure, id,
                                   ShardIndexOf(shards_.size(), id),
                                   "page-write-failed");
    return false;
  }
  ++s.writebacks;
  if (io) ++io->writes;
  return true;
}

bool BufferPool::EvictOne(Shard& s, PinIo* io) {
  if (s.lru.empty()) return false;
  const PageId victim = s.lru.back();
  s.lru.pop_back();
  auto it = s.map.find(victim);
  assert(it != s.map.end());
  Frame& f = it->second;
  if (f.dirty && f.loaded && file_) {
    // The frame is gone either way; WriteBack makes a failure observable
    // (write_failures) instead of counting it as a successful write-back.
    WriteBack(s, victim, f, io);
  }
  s.map.erase(it);
  ++s.evictions;
  return true;
}

bool BufferPool::FlushAll() {
  bool ok = true;
  for (const auto& sp : shards_) {
    Shard& s = *sp;
    std::lock_guard<std::mutex> lock(s.mu);
    for (auto& [id, f] : s.map) {
      if (f.dirty && f.loaded && file_) {
        if (WriteBack(s, id, f, nullptr)) {
          f.dirty = false;
        } else {
          ok = false;
        }
      }
    }
  }
  return ok;
}

size_t BufferPool::quarantined_pages() const {
  size_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    total += s->quarantined.size();
  }
  return total;
}

void BufferPool::ResetShardCounters(Shard& s) {
  s.hits = s.misses = s.evictions = s.writebacks = s.write_failures =
      s.wal_forced_syncs = s.read_retries = 0;
  s.high_water = s.map.size();
  s.pin_hit_ns.Reset();
  s.pin_miss_ns.Reset();
}

std::vector<BufferPool::ShardCounters> BufferPool::PerShardCounters()
    const {
  std::vector<ShardCounters> out;
  out.reserve(shards_.size());
  for (const auto& sp : shards_) {
    const Shard& s = *sp;
    std::lock_guard<std::mutex> lock(s.mu);
    ShardCounters c;
    c.hits = s.hits;
    c.misses = s.misses;
    c.evictions = s.evictions;
    c.writebacks = s.writebacks;
    c.write_failures = s.write_failures;
    c.wal_forced_syncs = s.wal_forced_syncs;
    c.read_retries = s.read_retries;
    c.high_water = s.high_water;
    c.quarantined = s.quarantined.size();
    c.frames = s.map.size();
    out.push_back(c);
  }
  return out;
}

obs::Histogram BufferPool::PinHitLatency() const {
  obs::Histogram h;
  for (const auto& sp : shards_) {
    std::lock_guard<std::mutex> lock(sp->mu);
    h += sp->pin_hit_ns;
  }
  return h;
}

obs::Histogram BufferPool::PinMissLatency() const {
  obs::Histogram h;
  for (const auto& sp : shards_) {
    std::lock_guard<std::mutex> lock(sp->mu);
    h += sp->pin_miss_ns;
  }
  return h;
}

void BufferPool::PublishMetrics(obs::MetricsRegistry& registry) const {
  const std::vector<ShardCounters> per = PerShardCounters();
  ShardCounters tot;
  for (const ShardCounters& c : per) {
    tot.hits += c.hits;
    tot.misses += c.misses;
    tot.evictions += c.evictions;
    tot.writebacks += c.writebacks;
    tot.write_failures += c.write_failures;
    tot.wal_forced_syncs += c.wal_forced_syncs;
    tot.read_retries += c.read_retries;
    tot.high_water += c.high_water;
    tot.quarantined += c.quarantined;
    tot.frames += c.frames;
  }
  registry.SetCounter("pool_pins_total{outcome=\"hit\"}", tot.hits);
  registry.SetCounter("pool_pins_total{outcome=\"miss\"}", tot.misses);
  registry.SetCounter("pool_evictions_total", tot.evictions);
  registry.SetCounter("pool_writebacks_total", tot.writebacks);
  registry.SetCounter("pool_write_failures_total", tot.write_failures);
  registry.SetCounter("pool_wal_forced_syncs_total", tot.wal_forced_syncs);
  registry.SetCounter("pool_read_retries_total", tot.read_retries);
  registry.SetGauge("pool_quarantined_pages", tot.quarantined);
  registry.SetGauge("pool_frames", tot.frames);
  registry.SetGauge("pool_frames_high_water", tot.high_water);
  registry.SetGauge("pool_capacity", capacity_);
  registry.SetGauge("pool_shards", shards_.size());
  registry.SetHistogram("pool_pin_ns{outcome=\"hit\"}", PinHitLatency());
  registry.SetHistogram("pool_pin_ns{outcome=\"miss\"}", PinMissLatency());
  if (per.size() > 1) {
    char name[80];
    for (size_t i = 0; i < per.size(); ++i) {
      const ShardCounters& c = per[i];
      std::snprintf(name, sizeof name,
                    "pool_shard_pins_total{shard=\"%zu\",outcome=\"hit\"}",
                    i);
      registry.SetCounter(name, c.hits);
      std::snprintf(name, sizeof name,
                    "pool_shard_pins_total{shard=\"%zu\",outcome=\"miss\"}",
                    i);
      registry.SetCounter(name, c.misses);
      std::snprintf(name, sizeof name,
                    "pool_shard_evictions_total{shard=\"%zu\"}", i);
      registry.SetCounter(name, c.evictions);
      std::snprintf(name, sizeof name,
                    "pool_shard_quarantined_pages{shard=\"%zu\"}", i);
      registry.SetGauge(name, c.quarantined);
    }
  }
}

void BufferPool::ResetCounters() {
  for (const auto& sp : shards_) {
    std::lock_guard<std::mutex> lock(sp->mu);
    ResetShardCounters(*sp);
  }
}

void BufferPool::Clear() {
  if (file_) FlushAll();
  for (const auto& sp : shards_) {
    Shard& s = *sp;
    std::lock_guard<std::mutex> lock(s.mu);
    s.lru.clear();
    s.map.clear();
    s.quarantined.clear();  // a fresh start re-attempts quarantined pages
    ResetShardCounters(s);
  }
}

void BufferPool::DiscardAll() {
  for (const auto& sp : shards_) {
    Shard& s = *sp;
    std::lock_guard<std::mutex> lock(s.mu);
    assert(s.lru.size() == s.map.size());  // nothing pinned
    s.lru.clear();
    s.map.clear();
  }
}

}  // namespace clipbb::storage
