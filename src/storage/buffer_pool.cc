#include "storage/buffer_pool.h"

namespace clipbb::storage {

BufferPool::BufferPool(size_t capacity) : capacity_(capacity) {}

bool BufferPool::Access(PageId id) {
  auto it = map_.find(id);
  if (it != map_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }
  ++misses_;
  if (capacity_ == 0) return false;
  if (map_.size() >= capacity_) {
    PageId victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
  }
  lru_.push_front(id);
  map_[id] = lru_.begin();
  return false;
}

void BufferPool::Clear() {
  lru_.clear();
  map_.clear();
  ResetCounters();
}

}  // namespace clipbb::storage
