// LRU buffer pool used by the Fig. 15 scalability experiment to model a
// cold, disk-resident index: every page access is classified hit or miss,
// and the bench charges a synthetic latency per miss.
#ifndef CLIPBB_STORAGE_BUFFER_POOL_H_
#define CLIPBB_STORAGE_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>

#include "storage/page_store.h"

namespace clipbb::storage {

/// Classic LRU page cache over page ids (contents live in the PageStore;
/// the pool only tracks residency).
class BufferPool {
 public:
  /// capacity = number of resident pages; 0 means "everything misses".
  explicit BufferPool(size_t capacity);

  /// Touches a page; returns true on hit, false on miss (after which the
  /// page is resident, possibly evicting the LRU page).
  bool Access(PageId id);

  bool Resident(PageId id) const { return map_.contains(id); }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t capacity() const { return capacity_; }
  size_t size() const { return map_.size(); }

  void ResetCounters() { hits_ = misses_ = 0; }
  void Clear();

 private:
  size_t capacity_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  std::list<PageId> lru_;  // front = most recent
  std::unordered_map<PageId, std::list<PageId>::iterator> map_;
};

}  // namespace clipbb::storage

#endif  // CLIPBB_STORAGE_BUFFER_POOL_H_
