// LRU buffer pool of the paged storage engine.
//
// Two operating modes share one LRU + frame table:
//
//  * Residency mode (no backing file — the original count-only pool kept
//    for the simulated cold-disk rows of Fig. 15): Access(id) classifies a
//    page touch as hit or miss and maintains residency, holding no bytes.
//  * Content mode (constructed over a PageFile): the pool owns page-sized
//    frames. Pin(id) returns the frame bytes, reading the page from the
//    file on a miss (possibly evicting the LRU unpinned frame, writing it
//    back first when dirty). Pinned frames are never evicted; Unpin
//    returns the frame to the LRU, optionally marking it dirty. If every
//    frame is pinned the pool grows transiently and shrinks back on Unpin.
//
// Write path (rtree/paged_rtree.h write mode): PinNew hands out a zeroed
// frame without reading the file (freshly allocated pages have no old
// contents worth a read), and dirty frames carry the LSN of the WAL record
// covering their contents. When a Wal is attached, the pool enforces the
// WAL rule — a dirty frame is written back only after its record is
// durable (flushed-LSN >= frame-LSN), syncing the log first if needed.
//
// Not thread-safe; one pool per querying thread.
#ifndef CLIPBB_STORAGE_BUFFER_POOL_H_
#define CLIPBB_STORAGE_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "storage/page_file.h"
#include "storage/page_store.h"

namespace clipbb::storage {

class Wal;

class BufferPool {
 public:
  /// Residency-only pool; capacity = resident pages, 0 = everything misses.
  explicit BufferPool(size_t capacity);

  /// Content-holding pool over `file` (not owned; must outlive the pool).
  /// The file's page size must be set before the first Pin.
  BufferPool(size_t capacity, PageFile* file);

  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Residency touch; returns true on hit, false on miss (after which the
  /// page is resident, possibly evicting the LRU page). Never reads bytes.
  bool Access(PageId id);

  /// Pins a page and returns its bytes (valid until the matching Unpin).
  /// Counts a hit when the frame is loaded, a miss (plus a file page read)
  /// otherwise. Returns nullptr on read failure. Content mode only.
  const std::byte* Pin(PageId id);

  /// Pin for mutation: same as Pin but the frame is marked dirty, so
  /// eviction (or FlushAll) writes it back to the file.
  std::byte* PinForWrite(PageId id);

  /// Pin for a page that has no on-disk contents yet (just allocated):
  /// returns a zeroed dirty frame without reading the file. Reuses the
  /// cached frame when one exists (a recycled free page), still zeroed.
  std::byte* PinNew(PageId id);

  /// Releases a pin taken by Pin/PinForWrite/PinNew. A non-zero `lsn`
  /// records the WAL LSN covering the frame's current contents (the frame
  /// keeps the highest LSN seen; see SetWal).
  void Unpin(PageId id, bool dirty = false, uint64_t lsn = 0);

  /// Writes every dirty frame back to the file (WAL first when attached).
  /// Returns false on any write failure (remaining frames still
  /// attempted).
  bool FlushAll();

  /// Attaches the write-ahead log whose records cover this pool's dirty
  /// frames. With a log attached, no dirty frame reaches the file before
  /// its record: write-back syncs the log when flushed-LSN < frame-LSN.
  void SetWal(Wal* wal) { wal_ = wal; }

  bool Resident(PageId id) const { return map_.contains(id); }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t writebacks() const { return writebacks_; }
  /// WAL syncs forced by the write-back rule (eviction or flush reached a
  /// dirty frame whose record was not yet durable).
  uint64_t wal_forced_syncs() const { return wal_forced_syncs_; }
  /// Dirty frames whose write-back failed (their modifications are lost);
  /// nonzero means the file no longer reflects every PinForWrite.
  uint64_t write_failures() const { return write_failures_; }
  size_t capacity() const { return capacity_; }
  size_t size() const { return map_.size(); }

  void ResetCounters() {
    hits_ = misses_ = writebacks_ = write_failures_ = wal_forced_syncs_ = 0;
  }

  /// Drops every frame (dirty frames are written back first in content
  /// mode) and resets the counters.
  void Clear();

  /// Drops every frame WITHOUT write-back — dirty contents are discarded.
  /// The poisoned-writer path uses this: after a staging failure the
  /// frames hold uncommitted mutations that must never reach the file;
  /// dropping them leaves the file at the last durable commit (plus
  /// whatever the WAL replays on the next open). Frames must be unpinned.
  void DiscardAll();

 private:
  struct Frame {
    std::unique_ptr<std::byte[]> data;  // null in residency mode
    uint32_t pins = 0;
    bool dirty = false;
    bool loaded = false;
    bool in_lru = false;
    uint64_t lsn = 0;  // highest WAL LSN covering the contents
    std::list<PageId>::iterator lru_it;
  };

  std::byte* PinImpl(PageId id, bool dirty);
  /// Evicts the LRU unpinned frame (writing back when dirty); false when
  /// every frame is pinned.
  bool EvictOne();
  /// WAL-rule write-back of one dirty frame.
  bool WriteBack(PageId id, Frame& f);
  void MoveToFront(PageId id, Frame& f);

  size_t capacity_;
  PageFile* file_ = nullptr;
  Wal* wal_ = nullptr;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t writebacks_ = 0;
  uint64_t write_failures_ = 0;
  uint64_t wal_forced_syncs_ = 0;
  std::list<PageId> lru_;  // front = most recent; unpinned frames only
  std::unordered_map<PageId, Frame> map_;
};

}  // namespace clipbb::storage

#endif  // CLIPBB_STORAGE_BUFFER_POOL_H_
