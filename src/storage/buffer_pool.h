// Lock-striped LRU buffer pool of the paged storage engine.
//
// Two operating modes share one frame/LRU design:
//
//  * Residency mode (no backing file — the original count-only pool kept
//    for the simulated cold-disk rows of Fig. 15): Access(id) classifies a
//    page touch as hit or miss and maintains residency, holding no bytes.
//  * Content mode (constructed over a PageFile): the pool owns page-sized
//    frames. Pin(id) returns the frame bytes, reading the page from the
//    file on a miss (possibly evicting the LRU unpinned frame, writing it
//    back first when dirty). Pinned frames are never evicted; Unpin
//    returns the frame to the LRU, optionally marking it dirty.
//
// Concurrency: the pool is sharded into `shards` partitions, each with its
// own mutex, LRU list, and frame map; a page's shard is fixed by a hash of
// its id. Concurrent Pin/Unpin from different threads contend only when
// their pages land in the same shard, and two threads pinning the same
// absent page serialize on its shard latch so the file is read exactly
// once (no duplicate physical reads). Per-shard capacity is the total
// capacity split evenly, so a 1-shard pool behaves exactly like the
// pre-sharding LRU (the deterministic-baseline configuration). Counter
// accessors sum the per-shard counters and are exact; for per-operation
// attribution that stays race-free under concurrency, every Pin/Unpin can
// report its own physical transfers through a caller-owned PinIo — the
// per-thread accumulate-then-sum pattern the batch query path uses.
//
// All-pinned overflow: if every frame of a shard is pinned, the shard
// grows past its capacity transiently and shrinks back on Unpin. The
// growth is bounded by the number of simultaneously pinned frames (one
// per concurrent query, plus one transaction's staged page set on the
// write path — an UpdateClips over a pool smaller than the file can pin
// O(file) frames). frames_high_water() records the worst total footprint
// so a ballooning pool is observable instead of silent.
//
// Write path (rtree/paged_rtree.h write mode): PinNew hands out a zeroed
// frame without reading the file (freshly allocated pages have no old
// contents worth a read), and dirty frames carry the LSN of the WAL record
// covering their contents. When a Wal is attached, the pool enforces the
// WAL rule — a dirty frame is written back only after its record is
// durable (flushed-LSN >= frame-LSN), syncing the log first if needed.
// The rule holds per shard: any shard's eviction path may force the sync,
// and the Wal serializes internally (its own latch; see storage/wal.h).
//
// Read-failure model: a miss read that fails (EIO, short read) or whose
// frame is rejected by the installed verifier (checksum / structural
// validation) is retried up to kMaxReadRetries times with a tiny backoff;
// the retries are observable in PinIo::read_retries / read_retries(). A
// page that still fails is quarantined: the pin returns nullptr with a
// Status naming the error kind and page, and later pins of that page
// fast-fail as kQuarantined without touching the file until Clear().
#ifndef CLIPBB_STORAGE_BUFFER_POOL_H_
#define CLIPBB_STORAGE_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/metrics.h"
#include "storage/page_file.h"
#include "storage/page_store.h"
#include "storage/status.h"

namespace clipbb::storage {

class Wal;

class BufferPool {
 public:
  /// Physical transfers performed by one Pin/Unpin call, accumulated into
  /// a caller-owned (typically per-thread) counter set.
  struct PinIo {
    uint32_t reads = 0;         // file page reads (misses)
    uint32_t read_retries = 0;  // re-reads after a transient fault
    uint32_t writes = 0;        // file page writes (dirty evictions)
    uint32_t wal_syncs = 0;     // WAL syncs forced by the write-back rule
    uint64_t miss_ns = 0;       // wall time inside miss pins (I/O + verify)
  };

  /// Point-in-time copy of one shard's counters (see PerShardCounters).
  struct ShardCounters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t writebacks = 0;
    uint64_t write_failures = 0;
    uint64_t wal_forced_syncs = 0;
    uint64_t read_retries = 0;
    uint64_t high_water = 0;
    uint64_t quarantined = 0;
    uint64_t frames = 0;  // current footprint
  };

  /// Miss-read validation hook: called with the freshly read frame bytes
  /// (file read or overlay image, shard latch held) before the frame
  /// becomes visible; a non-ok Status rejects the frame. File reads that
  /// fail verification are retried like any transient read fault; overlay
  /// images are in-memory and fail immediately. PagedRTree installs a
  /// format-aware verifier (checksum + structural bounds) at open.
  using PageVerifier = std::function<Status(PageId, const std::byte*)>;

  /// Residency-only pool; capacity = resident pages, 0 = everything
  /// misses. Always a single shard (the simulated rows are sequential).
  explicit BufferPool(size_t capacity);

  /// Content-holding pool over `file` (not owned; must outlive the pool).
  /// The file's page size must be set before the first Pin. `shards` > 1
  /// lock-stripes the pool for concurrent querying threads; it is clamped
  /// to `capacity` so every shard owns at least one frame.
  BufferPool(size_t capacity, PageFile* file, unsigned shards = 1);

  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Residency touch; returns true on hit, false on miss (after which the
  /// page is resident, possibly evicting the LRU page). Never reads bytes.
  bool Access(PageId id);

  /// Pins a page and returns its bytes (valid until the matching Unpin).
  /// Counts a hit when the frame is loaded, a miss (plus a file page read)
  /// otherwise. Returns nullptr on read/verify failure, with the reason in
  /// `*status` when given: transient faults are retried a bounded number
  /// of times first (kMaxReadRetries, counted in PinIo::read_retries), and
  /// a page that still fails is quarantined — later pins fast-fail with
  /// kQuarantined and no file access until Clear(). Content mode only.
  const std::byte* Pin(PageId id, PinIo* io = nullptr,
                       Status* status = nullptr);

  /// Pin for mutation: same as Pin but the frame is marked dirty, so
  /// eviction (or FlushAll) writes it back to the file.
  std::byte* PinForWrite(PageId id, PinIo* io = nullptr,
                         Status* status = nullptr);

  /// Pin for a page that has no on-disk contents yet (just allocated):
  /// returns a zeroed dirty frame without reading the file. Reuses the
  /// cached frame when one exists (a recycled free page), still zeroed.
  std::byte* PinNew(PageId id, PinIo* io = nullptr);

  /// Releases a pin taken by Pin/PinForWrite/PinNew. A non-zero `lsn`
  /// records the WAL LSN covering the frame's current contents (the frame
  /// keeps the highest LSN seen; see SetWal). Dropping the last pin may
  /// shrink transient overage, so the call can perform write-backs.
  void Unpin(PageId id, bool dirty = false, uint64_t lsn = 0,
             PinIo* io = nullptr);

  /// Replaces a pinned frame's contents wholesale (memcpy of one page
  /// under the shard latch). The write path stages pages by encoding into
  /// a private scratch buffer and installing here, so concurrent snapshot
  /// readers copying the frame (ReadPageCopy) can never observe a
  /// half-encoded page. The caller must hold a pin on `id`.
  void OverwritePinned(PageId id, const std::byte* src);

  /// Copies a page's current bytes into `dst` (one page) without leaving
  /// a pin behind: a hit copies the frame under the shard latch; a miss
  /// loads the frame (counted like a Pin miss, same retry/quarantine
  /// rules), copies it, and leaves it unpinned in the LRU. The snapshot
  /// read path uses this — its copy, combined with a post-copy re-check
  /// of the epoch chain, is what makes pinned traversals race-free
  /// against OverwritePinned. Content mode only.
  bool ReadPageCopy(PageId id, std::byte* dst, PinIo* io = nullptr,
                    Status* status = nullptr);

  /// Peeks a page's current bytes for epoch pre-image capture: copies the
  /// frame when resident (no hit/miss accounting, no LRU touch),
  /// otherwise reads the overlay image or the file directly without
  /// installing a frame. Sets `*from_file` to whether the bytes came from
  /// a physical read. Returns false on read failure. Content mode only.
  bool ReadForCapture(PageId id, std::byte* dst, bool* from_file = nullptr);

  /// Writes every dirty frame back to the file (WAL first when attached).
  /// Returns false on any write failure (remaining frames still
  /// attempted).
  bool FlushAll();

  /// Attaches the write-ahead log whose records cover this pool's dirty
  /// frames. With a log attached, no dirty frame reaches the file before
  /// its record: write-back syncs the log when flushed-LSN < frame-LSN.
  /// The Wal is internally latched, so any shard may force the sync.
  void SetWal(Wal* wal) { wal_ = wal; }

  /// Attaches (or swaps) the read-only redo overlay: a miss whose newest
  /// committed contents live only in a sidecar WAL — which a read-only
  /// open must not replay into the file — is served from the overlay
  /// image instead of the file. Still counted as a miss/read: it is a
  /// fault outside the pool either way.
  ///
  /// Swap rule (shared ownership): an attached map is IMMUTABLE. A caller
  /// that wants to advance the overlay (the follower applier does, after
  /// every applied commit window) builds a NEW map and swaps it in here;
  /// in-flight reads that grabbed the old handle finish against the old
  /// map, which the shared_ptr keeps alive until the last such read
  /// drops it. Pass nullptr to detach.
  void SetReadOverlay(std::shared_ptr<const RecoveredPageMap> overlay) {
    std::lock_guard<std::mutex> lock(overlay_mu_);
    overlay_ = std::move(overlay);
  }

  /// Installs fresh contents into a page's resident frame, if any (memcpy
  /// of one page under the shard latch). The follower applier calls this
  /// after swapping the overlay so an already-cached frame matches the new
  /// overlay version; a non-resident page simply misses into the new
  /// overlay later. The caller must guarantee no thread holds a raw pin on
  /// the page (the follower read path only takes latched copies). Returns
  /// whether a frame was refreshed. Content mode only.
  bool RefreshResident(PageId id, const std::byte* src);

  /// Enables/disables the quarantine (bounded retries still apply). A
  /// follower tails a live writer whose in-place page writes can race our
  /// preads, so a failed read there is presumed transient and the page
  /// must stay re-attemptable instead of being permanently fast-failed.
  /// Not thread-safe against concurrent pins; set before handing the pool
  /// to workers.
  void SetQuarantineEnabled(bool on) { quarantine_enabled_ = on; }

  /// Installs the miss-read verifier (see PageVerifier). Not thread-safe
  /// against concurrent pins; set it before handing the pool to workers.
  void SetVerifier(PageVerifier v) { verifier_ = std::move(v); }

  /// Extra read attempts after a failed or rejected miss read before the
  /// page is given up on and quarantined.
  static constexpr unsigned kMaxReadRetries = 2;

  bool Resident(PageId id) const;

  uint64_t hits() const { return Sum(&Shard::hits); }
  uint64_t misses() const { return Sum(&Shard::misses); }
  /// Frames evicted to make room (dirty or clean; every dirty eviction is
  /// also a writeback).
  uint64_t evictions() const { return Sum(&Shard::evictions); }
  uint64_t writebacks() const { return Sum(&Shard::writebacks); }
  /// Miss re-reads after a transient read failure or verify rejection.
  uint64_t read_retries() const { return Sum(&Shard::read_retries); }
  /// Pages that exhausted their retries and are now fast-failed.
  size_t quarantined_pages() const;
  /// WAL syncs forced by the write-back rule (eviction or flush reached a
  /// dirty frame whose record was not yet durable).
  uint64_t wal_forced_syncs() const { return Sum(&Shard::wal_forced_syncs); }
  /// Dirty frames whose write-back failed (their modifications are lost);
  /// nonzero means the file no longer reflects every PinForWrite.
  uint64_t write_failures() const { return Sum(&Shard::write_failures); }
  size_t capacity() const { return capacity_; }
  unsigned shards() const { return static_cast<unsigned>(shards_.size()); }
  size_t size() const;

  /// Largest total frame count the pool ever held (sum of per-shard high
  /// waters, so with >1 shard it is an upper bound on the simultaneous
  /// footprint; exact for a single shard). frames_high_water() - capacity()
  /// is the worst all-pinned overage — a tiny pool under a large
  /// transaction balloons to the transaction's staged page set, and this
  /// counter is the signal (see the class comment).
  uint64_t frames_high_water() const { return Sum(&Shard::high_water); }

  /// Per-shard counter snapshot, index = shard number. Each shard is read
  /// under its own latch, so every row is internally consistent (the rows
  /// are not a single atomic cross-shard cut, same as the Sum accessors).
  std::vector<ShardCounters> PerShardCounters() const;

  /// Merged pin latency distributions (hit pins / miss pins; content mode
  /// only). Recorded under the shard latch with plain counters — the same
  /// no-atomics discipline as the counters — and summed across shards
  /// here. The timer starts before the latch, so latch wait is included.
  obs::Histogram PinHitLatency() const;
  obs::Histogram PinMissLatency() const;

  /// Publishes the pool's counters, per-shard gauges, and pin latency
  /// histograms into `registry` under pool_* names (idempotent Set/
  /// overwrite semantics — safe to call repeatedly on a live pool).
  void PublishMetrics(obs::MetricsRegistry& registry) const;

  void ResetCounters();

  /// Drops every frame (dirty frames are written back first in content
  /// mode) and resets the counters.
  void Clear();

  /// Drops every frame WITHOUT write-back — dirty contents are discarded.
  /// The poisoned-writer path uses this: after a staging failure the
  /// frames hold uncommitted mutations that must never reach the file;
  /// dropping them leaves the file at the last durable commit (plus
  /// whatever the WAL replays on the next open). Frames must be unpinned.
  void DiscardAll();

 private:
  struct Frame {
    std::unique_ptr<std::byte[]> data;  // null in residency mode
    uint32_t pins = 0;
    bool dirty = false;
    bool loaded = false;
    bool in_lru = false;
    uint64_t lsn = 0;  // highest WAL LSN covering the contents
    std::list<PageId>::iterator lru_it;
  };

  /// One lock-striped partition: frames whose page id hashes here.
  struct Shard {
    mutable std::mutex mu;
    size_t capacity = 0;  // this shard's slice of the pool capacity
    std::list<PageId> lru;  // front = most recent; unpinned frames only
    std::unordered_map<PageId, Frame> map;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t writebacks = 0;
    uint64_t write_failures = 0;
    uint64_t wal_forced_syncs = 0;
    uint64_t read_retries = 0;
    uint64_t high_water = 0;  // max frames this shard ever held
    obs::Histogram pin_hit_ns;   // hit-pin latency (latch wait included)
    obs::Histogram pin_miss_ns;  // miss-pin latency (read + verify + evict)
    /// Pages whose miss read kept failing after kMaxReadRetries; pins
    /// fast-fail until Clear() gives them another chance.
    std::unordered_set<PageId> quarantined;
  };

  Shard& ShardFor(PageId id);
  const Shard& ShardFor(PageId id) const;

  std::byte* PinImpl(PageId id, bool dirty, PinIo* io, Status* status);
  /// The miss fetch: reads the page (or copies the overlay image), runs
  /// the verifier, and retries transient failures. Shard latch held.
  bool LoadFrame(Shard& s, PageId id, std::byte* dst, PinIo* io,
                 Status* status);
  /// Evicts the shard's LRU unpinned frame (writing back when dirty);
  /// false when every frame is pinned. Shard latch held by the caller.
  bool EvictOne(Shard& s, PinIo* io);
  /// WAL-rule write-back of one dirty frame. Shard latch held.
  bool WriteBack(Shard& s, PageId id, Frame& f, PinIo* io);
  void MoveToFront(Shard& s, PageId id, Frame& f);
  void NoteGrowth(Shard& s);
  /// Zeroes one shard's counters (high water restarts at the current
  /// footprint). Shard latch held by the caller.
  static void ResetShardCounters(Shard& s);

  uint64_t Sum(uint64_t Shard::*counter) const;

  /// Current overlay handle; see the SetReadOverlay swap rule. Taken once
  /// per miss/capture so the map a read consults cannot change mid-read.
  std::shared_ptr<const RecoveredPageMap> OverlayRef() const {
    std::lock_guard<std::mutex> lock(overlay_mu_);
    return overlay_;
  }

  size_t capacity_;
  PageFile* file_ = nullptr;
  Wal* wal_ = nullptr;
  /// Read-only redo images, shared with whoever published them (guarded
  /// by overlay_mu_, a leaf lock — safe to take under a shard latch).
  std::shared_ptr<const RecoveredPageMap> overlay_;
  mutable std::mutex overlay_mu_;
  bool quarantine_enabled_ = true;
  PageVerifier verifier_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace clipbb::storage

#endif  // CLIPBB_STORAGE_BUFFER_POOL_H_
