// Write-ahead log of the paged storage engine: physical redo logging with
// page-image records, CRC-protected, fsync'd at commit boundaries.
//
// Protocol (ARIES-style redo-only, no-steal at transaction granularity):
//
//  * Every page the writer modifies is first stamped with a fresh LSN (the
//    page-format convention puts the LSN at byte offset kPageLsnOffset of
//    every page, superblock included) and its full post-image appended to
//    the log; only then may the frame become evictable. One top-level tree
//    operation = one transaction = its page images followed by one commit
//    record carrying the operation sequence number. Records accumulate in
//    a memory buffer that only ever holds whole transactions, so the
//    on-disk log prefix is always transaction-aligned.
//  * Sync() makes the buffered transactions durable (write + fdatasync) —
//    the commit boundary. The BufferPool refuses to write back any dirty
//    frame whose LSN exceeds durable_lsn(), calling Sync() first (WAL rule:
//    log before data).
//  * Recover() scans the log at open, discards a torn or corrupt tail
//    (CRC / truncation), and replays every page image of every *committed*
//    transaction whose LSN is newer than the on-disk page's LSN. Redo is
//    idempotent; a crash during recovery just replays again.
//  * Checkpoint = flush all dirty frames, fsync the page file, then
//    Truncate() the log. The superblock's lsn field persists the LSN
//    high-water mark across log truncations.
//
// Concurrency: the log is single-writer — one thread appends records —
// but with a sharded BufferPool any shard's eviction path may force a
// Sync() (the log-before-data rule), so Append/Sync/Truncate serialize on
// an internal latch and durable_lsn() is an atomic read. Two shards
// racing to the same forced sync are fine: the loser finds the buffer
// empty and returns immediately.
#ifndef CLIPBB_STORAGE_WAL_H_
#define CLIPBB_STORAGE_WAL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "storage/page_file.h"
#include "storage/page_store.h"

namespace clipbb::storage {

/// Byte offset at which every page (superblock included) stores the LSN of
/// the log record that last wrote it — the contract between the WAL's redo
/// pass and the page formats layered above storage.
inline constexpr size_t kPageLsnOffset = 8;

inline constexpr uint64_t kWalFileMagic = 0xC11BB0CC'0A11'0001ULL;
inline constexpr uint32_t kWalRecordMagic = 0xCBB17EC0u;

/// CRC-32 (IEEE, reflected 0xEDB88320) over `data`; seed with a previous
/// return value to chain blocks.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

/// On-disk WAL file header, written once at offset 0. Public so the
/// follower-replica tailer and the offline scrub pass (src/replica/) can
/// parse the same bytes Recover() does; the layout is part of the on-disk
/// format and must not change shape.
struct WalFileHeader {
  uint64_t magic = kWalFileMagic;
  uint32_t page_size = 0;
  uint32_t reserved = 0;
};
static_assert(sizeof(WalFileHeader) == 16);

/// Fixed-size WAL record header; the CRC covers the header (crc field
/// zeroed) and the payload, so a torn write anywhere in the record is
/// detected.
struct WalRecordHeader {
  uint32_t magic = kWalRecordMagic;
  uint8_t type = 0;
  uint8_t pad[3] = {0, 0, 0};
  uint64_t lsn = 0;
  int64_t page_id = 0;   // page image: target page; commit: unused (0)
  uint64_t op_seq = 0;   // transaction this record belongs to
  uint32_t payload_len = 0;
  uint32_t crc = 0;
};
static_assert(sizeof(WalRecordHeader) == 40);

/// The CRC a valid record must carry (header with crc zeroed, then
/// payload). Takes the header by value so zeroing never mutates the
/// caller's copy.
inline uint32_t WalRecordCrc(WalRecordHeader h, const void* payload) {
  h.crc = 0;
  uint32_t c = Crc32(&h, sizeof h);
  if (h.payload_len > 0) c = Crc32(payload, h.payload_len, c);
  return c;
}

struct WalStats {
  uint64_t appends = 0;   // records appended (images + commits)
  uint64_t bytes = 0;     // bytes appended
  uint64_t syncs = 0;     // commit-boundary fsyncs
  uint64_t commits = 0;   // commit records (one per completed operation)
};

/// Latency and group-commit distributions, recorded under the WAL latch
/// (plain counters, no atomics — the latch already serializes them).
struct WalMetrics {
  obs::Histogram append_ns;    // Append{PageImage,Commit} wall time
  obs::Histogram sync_ns;      // Sync wall time (write + fdatasync)
  obs::Histogram sync_records; // records drained per sync (group-commit
                               // batch size; empty-buffer syncs not counted)
  obs::Histogram sync_bytes;   // bytes drained per sync
};

class Wal {
 public:
  enum RecordType : uint8_t { kPageImage = 1, kCommit = 2 };

  Wal() = default;
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Opens (creating or appending to) the log at `path`. `page_size` is
  /// recorded in the file header; `start_lsn` seeds the LSN counter (pass
  /// the superblock's persisted high-water mark + 1).
  bool Open(const std::string& path, uint32_t page_size, uint64_t start_lsn);
  void Close();
  bool is_open() const { return fd_ >= 0; }

  /// Appends a page post-image record; returns its LSN (0 on failure —
  /// LSNs start at 1). The image must be page_size bytes. `op_seq` names
  /// the transaction the image belongs to: redo applies an image only
  /// when a commit record with the SAME op_seq follows it, so images a
  /// failed (never-committed) operation leaked into the log are inert —
  /// a later transaction's commit cannot adopt them.
  uint64_t AppendPageImage(int64_t page_id, const void* image,
                           uint64_t op_seq);

  /// Appends a commit record closing transaction `op_seq` (also the
  /// operation sequence number recovery reports back).
  uint64_t AppendCommit(uint64_t op_seq);

  /// Writes the buffered transactions and fdatasyncs. The commit
  /// boundary. Callable from any thread (the write-back rule forces it
  /// from buffer-pool evictions); serialized on the internal latch.
  bool Sync();

  /// Highest LSN covered by a completed Sync (0 = nothing durable).
  uint64_t durable_lsn() const {
    return durable_lsn_.load(std::memory_order_acquire);
  }
  /// LSN the next record will receive.
  uint64_t next_lsn() const {
    return next_lsn_.load(std::memory_order_relaxed);
  }
  /// Bytes waiting in the buffer for the next Sync.
  size_t pending_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return buffer_.size();
  }

  /// Empties the log after a checkpoint (dirty pages flushed, page file
  /// synced). The LSN counter keeps running.
  bool Truncate();

  /// Point-in-time copy: eviction-forced Syncs bump the counters from
  /// reader threads, so the caller gets a consistent value, not a ref.
  WalStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  /// Point-in-time copy of the latency/group-commit distributions (taken
  /// under the latch, so the copy is internally consistent).
  WalMetrics MetricsSnapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return metrics_;
  }

  /// Publishes stats + distributions into `registry` under wal_* names
  /// (idempotent Set/overwrite semantics).
  void PublishMetrics(obs::MetricsRegistry& registry) const;

  struct RecoveryResult {
    bool log_found = false;        // a non-empty log existed
    uint64_t records_scanned = 0;  // valid records up to the last commit
    uint64_t pages_replayed = 0;   // images actually written to the file
    uint64_t tail_discarded = 0;   // bytes of torn/uncommitted tail dropped
    uint64_t last_op_seq = 0;      // op seq of the last committed record
    uint64_t max_lsn = 0;          // highest LSN seen in committed records
  };

  /// Redo pass over the log at `wal_path`. Two modes:
  ///
  ///  * Write mode (`overlay == nullptr`, the default): replays every
  ///    committed page image into `file` (open, page size set) in log
  ///    order, fsyncs it, and — with `truncate_after_replay`, the
  ///    write-mode default — empties the log so the next writer starts
  ///    clean.
  ///  * Read-only mode (`overlay != nullptr`, pass
  ///    truncate_after_replay = false): touches NEITHER the page file
  ///    NOR the log — committed images land in `*overlay` (last image
  ///    per page wins) for the caller's buffer pool to consult on miss.
  ///    The log may be a live writer's only durable copy of its commits,
  ///    and the page file may be mid-checkpoint by that writer, so a
  ///    reader must write to neither; redo is idempotent, so the next
  ///    open just rebuilds the overlay.
  ///
  /// A missing or empty log is success with log_found = false. Returns
  /// false only on real I/O failure — a torn tail is discarded, not
  /// fatal.
  static bool Recover(const std::string& wal_path, PageFile* file,
                      RecoveryResult* out,
                      bool truncate_after_replay = true,
                      RecoveredPageMap* overlay = nullptr);

 private:
  int fd_ = -1;
  uint32_t page_size_ = 0;
  std::atomic<uint64_t> next_lsn_{1};
  std::atomic<uint64_t> durable_lsn_{0};
  uint64_t buffered_lsn_ = 0;  // highest LSN in buffer_ (latched)
  std::vector<std::byte> buffer_;
  WalStats stats_;
  WalMetrics metrics_;
  uint64_t records_since_sync_ = 0;  // group-commit batch accumulator
  /// Serializes append/sync/truncate; see the class comment.
  mutable std::mutex mu_;
};

}  // namespace clipbb::storage

#endif  // CLIPBB_STORAGE_WAL_H_
