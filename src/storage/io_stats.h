// I/O accounting. The paper's headline metric is leaf-node accesses
// (internal nodes and the clip table are assumed memory-resident, §V-C);
// we additionally count internal accesses, result-contributing leaf
// accesses (for the Fig. 1c optimality ratio), clip-table lookups, and —
// on the paged storage engine — the physical page transfers: reads from
// the page file (buffer-pool misses) and writes (dirty evictions and
// flushes).
#ifndef CLIPBB_STORAGE_IO_STATS_H_
#define CLIPBB_STORAGE_IO_STATS_H_

#include <cstdint>

namespace clipbb::storage {

struct IoStats {
  uint64_t internal_accesses = 0;
  uint64_t leaf_accesses = 0;
  /// Leaf accesses that contributed at least one result (Fig. 1c numerator).
  uint64_t contributing_leaf_accesses = 0;
  /// Clip-table lookups (one per child considered while clipping is on).
  uint64_t clip_accesses = 0;
  /// Physical page reads from the page file (buffer-pool misses).
  uint64_t page_reads = 0;
  /// Physical page writes to the page file (dirty evictions + flushes).
  uint64_t page_writes = 0;

  void Reset() { *this = IoStats{}; }

  IoStats& operator+=(const IoStats& o) {
    internal_accesses += o.internal_accesses;
    leaf_accesses += o.leaf_accesses;
    contributing_leaf_accesses += o.contributing_leaf_accesses;
    clip_accesses += o.clip_accesses;
    page_reads += o.page_reads;
    page_writes += o.page_writes;
    return *this;
  }

  uint64_t TotalAccesses() const { return internal_accesses + leaf_accesses; }
};

}  // namespace clipbb::storage

#endif  // CLIPBB_STORAGE_IO_STATS_H_
