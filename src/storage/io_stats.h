// I/O accounting. The paper's headline metric is leaf-node accesses
// (internal nodes and the clip table are assumed memory-resident, §V-C);
// we additionally count internal accesses, result-contributing leaf
// accesses (for the Fig. 1c optimality ratio), clip-table lookups, and —
// on the paged storage engine — the physical transfers: page reads from
// the page file (buffer-pool misses), page writes (dirty evictions and
// flushes), write-ahead-log appends/bytes/syncs, and pages replayed by
// crash recovery.
//
// Concurrency contract: an IoStats is deliberately plain counters, never
// shared between threads. Multithreaded paths (rtree/batch.h,
// rtree/query_batch.h, PagedRTree::RunBatch) give every worker its own
// instance and combine with operator+= after the join — accumulate
// per-thread, sum once, exact totals with no atomics on the hot path.
#ifndef CLIPBB_STORAGE_IO_STATS_H_
#define CLIPBB_STORAGE_IO_STATS_H_

#include <cstdint>

namespace clipbb::storage {

struct IoStats {
  uint64_t internal_accesses = 0;
  uint64_t leaf_accesses = 0;
  /// Leaf accesses that contributed at least one result (Fig. 1c numerator).
  uint64_t contributing_leaf_accesses = 0;
  /// Clip-table lookups (one per child considered while clipping is on).
  uint64_t clip_accesses = 0;
  /// Physical page reads from the page file (buffer-pool misses).
  uint64_t page_reads = 0;
  /// Re-reads after a transient read failure or checksum mismatch (each
  /// retry is also counted in page_reads; a fault absorbed by retry is
  /// visible here and nowhere else).
  uint64_t read_retries = 0;
  /// Physical page writes to the page file (dirty evictions + flushes).
  uint64_t page_writes = 0;
  /// Write-ahead-log records appended (page images + commits).
  uint64_t wal_appends = 0;
  /// Write-ahead-log bytes appended.
  uint64_t wal_bytes = 0;
  /// Write-ahead-log fsyncs (commit boundaries + forced by write-back).
  uint64_t wal_syncs = 0;
  /// Page images replayed by WAL redo at open (crash recovery).
  uint64_t recovery_replays = 0;
  /// Wall time (ns) spent inside buffer-pool miss pins — the physical
  /// read, verification, retries, and any eviction they forced. The
  /// traced pin-miss-io span of a sampled query is this counter's delta.
  uint64_t pin_miss_ns = 0;

  void Reset() { *this = IoStats{}; }

  IoStats& operator+=(const IoStats& o) {
    internal_accesses += o.internal_accesses;
    leaf_accesses += o.leaf_accesses;
    contributing_leaf_accesses += o.contributing_leaf_accesses;
    clip_accesses += o.clip_accesses;
    page_reads += o.page_reads;
    read_retries += o.read_retries;
    page_writes += o.page_writes;
    wal_appends += o.wal_appends;
    wal_bytes += o.wal_bytes;
    wal_syncs += o.wal_syncs;
    recovery_replays += o.recovery_replays;
    pin_miss_ns += o.pin_miss_ns;
    return *this;
  }

  uint64_t TotalAccesses() const { return internal_accesses + leaf_accesses; }
};

}  // namespace clipbb::storage

#endif  // CLIPBB_STORAGE_IO_STATS_H_
