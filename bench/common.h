// Shared harness for the figure/table benches: dataset registry with
// paper-proportional (down-scaled) cardinalities, tree builders, and query
// helpers. Every bench prints plain aligned tables (util/table.h) so output
// can be diffed against EXPERIMENTS.md.
#ifndef CLIPBB_BENCH_COMMON_H_
#define CLIPBB_BENCH_COMMON_H_

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "rtree/factory.h"
#include "rtree/query_api.h"
#include "rtree/validate.h"
#include "util/env.h"
#include "util/table.h"
#include "util/timer.h"
#include "workload/dataset.h"
#include "workload/query.h"

namespace clipbb::bench {

/// Down-scaled dataset cardinalities, proportional to the paper's (§V-B:
/// par* 1.05 M, rea02 1.9 M, rea03 12 M, axo03 2.6 M, den03 1.3 M,
/// neu03 3.9 M), divided by ~20 and multiplied by CLIPBB_SCALE.
inline size_t DatasetNominal(const std::string& name) {
  size_t n = 50'000;
  if (name == "par02" || name == "par03") n = 52'000;
  if (name == "rea02") n = 94'000;
  if (name == "rea03") n = 150'000;
  if (name == "axo03") n = 128'000;
  if (name == "den03") n = 64'000;
  if (name == "neu03") n = 190'000;
  return ScaledCount(n);
}

inline workload::Dataset2 LoadDataset2(const std::string& name) {
  return workload::MakeDataset2(name, DatasetNominal(name));
}

inline workload::Dataset3 LoadDataset3(const std::string& name) {
  return workload::MakeDataset3(name, DatasetNominal(name));
}

/// All seven evaluation datasets in paper order, dispatched by dimension.
inline const std::vector<std::string> kDatasets2 = {"par02", "rea02"};
inline const std::vector<std::string> kDatasets3 = {"par03", "rea03",
                                                    "axo03", "den03",
                                                    "neu03"};

template <int D>
workload::Dataset<D> LoadDataset(const std::string& name);

template <>
inline workload::Dataset<2> LoadDataset<2>(const std::string& name) {
  return LoadDataset2(name);
}
template <>
inline workload::Dataset<3> LoadDataset<3>(const std::string& name) {
  return LoadDataset3(name);
}

template <int D>
const std::vector<std::string>& DatasetNames();

template <>
inline const std::vector<std::string>& DatasetNames<2>() {
  return kDatasets2;
}
template <>
inline const std::vector<std::string>& DatasetNames<3>() {
  return kDatasets3;
}

template <int D>
std::unique_ptr<rtree::RTree<D>> Build(rtree::Variant v,
                                       const workload::Dataset<D>& data) {
  return rtree::BuildTree<D>(v, data.items, data.domain);
}

/// Mean leaf accesses per query over a workload, through the unified
/// query API. Runs the batched hot path (reusable traversal context,
/// Hilbert-ordered scheduling); counts and I/O totals are identical to
/// issuing the queries one by one. Works for either backend.
template <int D>
storage::IoStats RunQueries(const rtree::SpatialEngine<D>& engine,
                            const std::vector<geom::Rect<D>>& queries,
                            size_t* results = nullptr,
                            rtree::EngineMetrics* metrics = nullptr) {
  engine.SetMetrics(metrics);  // null = the pre-obs fast path
  const rtree::QueryBatchResult r =
      engine.ExecuteBatch(std::span<const geom::Rect<D>>(queries));
  engine.SetMetrics(nullptr);
  if (results) {
    size_t total = 0;
    for (size_t c : r.counts) total += c;
    *results = total;
  }
  return r.io;
}

template <int D>
storage::IoStats RunQueries(const rtree::RTree<D>& tree,
                            const std::vector<geom::Rect<D>>& queries,
                            size_t* results = nullptr) {
  return RunQueries<D>(rtree::SpatialEngine<D>(tree), queries, results);
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// True when `flag` appears among the command-line arguments.
inline bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == flag) return true;
  }
  return false;
}

/// Integer value of `--flag=N` or `--flag N`; `fallback` when absent or
/// malformed.
inline int IntFlag(int argc, char** argv, const char* flag, int fallback) {
  const std::string name(flag);
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg == name && i + 1 < argc) return std::atoi(argv[i + 1]);
    if (arg.size() > name.size() + 1 && arg.compare(0, name.size(), name) == 0 &&
        arg[name.size()] == '=') {
      return std::atoi(arg.c_str() + name.size() + 1);
    }
  }
  return fallback;
}

/// Flat JSON metric sink for the CI bench-regression gate: hierarchical
/// string keys mapping to doubles, written as one sorted object. Enabled
/// by CLIPBB_BENCH_JSON=<path> (or --json <path> via EnableJsonFromArgs);
/// disabled it is a no-op. Deterministic counters (page reads, pool
/// misses, result totals) are the gated metrics — wall-clock values ride
/// along in the artifact but are too noisy to gate.
class JsonSink {
 public:
  static JsonSink& Get() {
    static JsonSink sink;
    return sink;
  }

  void Enable(std::string path) { path_ = std::move(path); }
  bool enabled() const { return !path_.empty(); }

  void Put(const std::string& key, double value) {
    if (enabled()) kv_.emplace_back(key, value);
  }

  /// Writes the collected metrics; returns false on I/O failure (also
  /// reported on stderr so CI logs show it).
  bool Flush() {
    if (!enabled()) return true;
    std::sort(kv_.begin(), kv_.end());
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench json: cannot write %s\n", path_.c_str());
      return false;
    }
    std::fprintf(f, "{\n");
    for (size_t i = 0; i < kv_.size(); ++i) {
      std::fprintf(f, "  \"%s\": %.17g%s\n", kv_[i].first.c_str(),
                   kv_[i].second, i + 1 < kv_.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    const bool ok = std::fclose(f) == 0;
    std::fprintf(stderr, "bench json: wrote %zu metrics to %s\n",
                 kv_.size(), path_.c_str());
    return ok;
  }

 private:
  std::vector<std::pair<std::string, double>> kv_;
  std::string path_;
};

/// Arms the sink from --json <path> or CLIPBB_BENCH_JSON.
inline void EnableJsonFromArgs(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      JsonSink::Get().Enable(argv[i + 1]);
      return;
    }
  }
  const char* env = std::getenv("CLIPBB_BENCH_JSON");
  if (env && *env) JsonSink::Get().Enable(env);
}

inline void JsonPut(const std::string& key, double value) {
  JsonSink::Get().Put(key, value);
}

/// Emits a latency histogram's percentiles into the JSON artifact under
/// `prefix`. The suffixes (.p50_ns/.p95_ns/.p99_ns/.max_ns/.samples) are
/// deliberately OUTSIDE the bench_check gated sets (.page_reads/.misses
/// regression-gated, .results/.visits/.hits/.checksum exactness-gated):
/// wall-clock distributions ride along as new informational keys and can
/// never fail the gate.
inline void JsonPutHistogram(const std::string& prefix,
                             const obs::Histogram& h) {
  if (h.count() == 0) return;
  JsonPut(prefix + ".p50_ns", static_cast<double>(h.Percentile(0.50)));
  JsonPut(prefix + ".p95_ns", static_cast<double>(h.Percentile(0.95)));
  JsonPut(prefix + ".p99_ns", static_cast<double>(h.Percentile(0.99)));
  JsonPut(prefix + ".max_ns", static_cast<double>(h.max()));
  JsonPut(prefix + ".samples", static_cast<double>(h.count()));
}

/// Scratch file path for benches that exercise the paged storage engine
/// (fig15/fig11 --paged). Unique per process; callers remove it when done.
inline std::string BenchTempFile(const std::string& stem) {
  const char* dir = std::getenv("TMPDIR");
  std::string path = dir && *dir ? dir : "/tmp";
  if (path.back() != '/') path += '/';
  path += "clipbb_bench_" + stem + "_" + std::to_string(::getpid()) +
          ".pages";
  return path;
}

}  // namespace clipbb::bench

#endif  // CLIPBB_BENCH_COMMON_H_
