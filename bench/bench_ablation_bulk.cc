// Ablation: does clipping help regardless of how the tree was packed?
// Compares dynamic insertion, Hilbert packing, and STR packing of the
// same R-tree structure, unclipped vs CSTA-clipped (DESIGN.md extension).
#include "common.h"

#include "rtree/bulk.h"
#include "stats/node_stats.h"

namespace clipbb::bench {
namespace {

constexpr int kQueries = 200;

template <int D>
void RunDataset(const std::string& name, Table* t) {
  const auto data = LoadDataset<D>(name);
  const auto queries = workload::MakeQueries<D>(data, 10.0, kQueries);

  auto evaluate = [&](const char* label,
                      std::unique_ptr<rtree::RTree<D>> tree) {
    const uint64_t plain =
        RunQueries<D>(*tree, queries.queries).leaf_accesses;
    stats::SpaceOptions sopts;
    sopts.max_nodes = 512;
    if (D == 3) sopts.mc_samples = 4096;
    const auto space = stats::MeasureSpace<D>(*tree, sopts);
    tree->EnableClipping(core::ClipConfig<D>::Sta());
    const uint64_t clipped =
        RunQueries<D>(*tree, queries.queries).leaf_accesses;
    t->AddRow({name, label, Table::Percent(space.avg_dead_fraction),
               Table::Fixed(static_cast<double>(plain) / kQueries, 2),
               Table::Fixed(plain ? 100.0 * clipped / plain : 100.0, 1)});
  };

  evaluate("dynamic R*",
           rtree::BuildTree<D>(rtree::Variant::kRStar, data.items,
                               data.domain));
  {
    auto tree = rtree::MakeRTree<D>(rtree::Variant::kRStar, data.domain);
    rtree::BulkLoad<D>(tree.get(), data.items, rtree::BulkOrder::kHilbert);
    evaluate("Hilbert-packed", std::move(tree));
  }
  {
    auto tree = rtree::MakeRTree<D>(rtree::Variant::kRStar, data.domain);
    rtree::BulkLoad<D>(tree.get(), data.items, rtree::BulkOrder::kStr);
    evaluate("STR-packed", std::move(tree));
  }
}

void Run() {
  PrintHeader("Ablation — packing method vs clipping benefit (QR1)");
  Table t({"dataset", "packing", "dead space", "leafAcc/query",
           "clipped leafAcc (%)"});
  RunDataset<2>("par02", &t);
  RunDataset<3>("axo03", &t);
  t.Print();
}

}  // namespace
}  // namespace clipbb::bench

int main() {
  clipbb::bench::Run();
  return 0;
}
