// §V-C "Spatial Join Performance": axo03 ⋈ den03 with the Index Nested
// Loop Join (index on the larger axo03, probe with every den03 object) and
// the Synchronised Tree Traversal (both indexed), per R-tree variant,
// unclipped vs CSTA-clipped.
#include "common.h"

#include "join/inlj.h"
#include "join/stt.h"

namespace clipbb::bench {
namespace {

void Run() {
  const auto axo = LoadDataset3("axo03");
  const auto den = LoadDataset3("den03");

  PrintHeader("Spatial join — axo03 x den03, leaf accesses");
  Table t({"variant", "join", "pairs", "leafAcc plain", "leafAcc CSTA",
           "I/O reduction"});
  for (rtree::Variant v : rtree::kAllVariants) {
    auto ta = Build<3>(v, axo);
    auto tb = Build<3>(v, den);

    const auto inlj_plain = join::IndexNestedLoopJoin<3>(*ta, den.items);
    const auto stt_plain = join::SynchronizedTreeTraversal<3>(*ta, *tb);

    ta->EnableClipping(core::ClipConfig<3>::Sta());
    tb->EnableClipping(core::ClipConfig<3>::Sta());
    const auto inlj_clip = join::IndexNestedLoopJoin<3>(*ta, den.items);
    const auto stt_clip = join::SynchronizedTreeTraversal<3>(*ta, *tb);

    auto add = [&](const char* kind, const join::JoinStats& plain,
                   const join::JoinStats& clip) {
      const double reduction =
          plain.TotalLeafAccesses()
              ? 1.0 - static_cast<double>(clip.TotalLeafAccesses()) /
                          static_cast<double>(plain.TotalLeafAccesses())
              : 0.0;
      t.AddRow({rtree::VariantName(v), kind,
                Table::Int(static_cast<long long>(plain.result_pairs)),
                Table::Int(static_cast<long long>(plain.TotalLeafAccesses())),
                Table::Int(static_cast<long long>(clip.TotalLeafAccesses())),
                Table::Percent(reduction)});
    };
    add("INLJ", inlj_plain, inlj_clip);
    add("STT", stt_plain, stt_clip);
  }
  t.Print();
}

}  // namespace
}  // namespace clipbb::bench

int main() {
  clipbb::bench::Run();
  return 0;
}
