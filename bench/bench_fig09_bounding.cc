// Fig. 9: bounding-method comparison on par02 and rea02 over RR*-tree
// nodes — (a) average dead space, (b) average representation cost in
// points. The CBB rows replace the node MBB with its clipped shape.
#include "common.h"

#include "core/clip_builder.h"
#include "geom/bounding.h"
#include "geom/union_volume.h"
#include "stats/node_stats.h"

namespace clipbb::bench {
namespace {

using geom::BoundingKind;
using geom::Rect2;

struct ShapeAccum {
  double dead = 0.0;
  double points = 0.0;
  size_t nodes = 0;
};

void Run() {
  PrintHeader("Fig 9 — bounding methods on RR*-tree nodes (2d datasets)");
  Table t({"dataset", "method", "avg dead space", "avg #points"});
  for (const std::string& name : DatasetNames<2>()) {
    const auto data = LoadDataset2(name);
    auto tree = Build<2>(rtree::Variant::kRRStar, data);
    const auto ids = stats::SampleNodes<2>(*tree, /*leaves_only=*/false,
                                           /*max_nodes=*/768);

    constexpr BoundingKind kKinds[] = {
        BoundingKind::kMbc, BoundingKind::kMbb, BoundingKind::kRmbb,
        BoundingKind::kC4,  BoundingKind::kC5,  BoundingKind::kCh};
    ShapeAccum acc[6];
    ShapeAccum cbb_sky, cbb_sta;

    for (storage::PageId id : ids) {
      const auto& n = tree->NodeAt(id);
      const auto children = n.ChildRects();
      const double occupied = geom::UnionArea(children);
      for (size_t k = 0; k < 6; ++k) {
        const auto s = geom::ComputeBounding(kKinds[k], children);
        if (s.area > 0.0) {
          acc[k].dead += std::max(0.0, 1.0 - occupied / s.area);
        } else {
          acc[k].dead += 1.0;
        }
        acc[k].points += s.num_points;
        ++acc[k].nodes;
      }
      // CBBs: MBB area minus clipped regions.
      const Rect2 mbb = n.ComputeMbb();
      for (auto* out : {&cbb_sky, &cbb_sta}) {
        core::ClipConfig<2> cfg;
        cfg.mode = out == &cbb_sky ? core::ClipMode::kSkyline
                                   : core::ClipMode::kStairline;
        const auto clips = core::BuildClips<2>(mbb, children, cfg);
        std::vector<Rect2> regions;
        for (const auto& c : clips) {
          regions.push_back(core::ClipRegion<2>(mbb, c));
        }
        const double area = mbb.Volume() - geom::UnionArea(regions);
        out->dead += area > 0.0 ? std::max(0.0, 1.0 - occupied / area) : 0.0;
        out->points += 2.0 + static_cast<double>(clips.size());
        ++out->nodes;
      }
    }
    auto add = [&](const char* method, const ShapeAccum& a) {
      t.AddRow({name, method, Table::Percent(a.dead / a.nodes),
                Table::Fixed(a.points / a.nodes, 1)});
    };
    for (size_t k = 0; k < 6; ++k) add(geom::BoundingKindName(kKinds[k]), acc[k]);
    add("CBB_SKY", cbb_sky);
    add("CBB_STA", cbb_sta);
  }
  t.Print();
}

}  // namespace
}  // namespace clipbb::bench

int main() {
  clipbb::bench::Run();
  return 0;
}
