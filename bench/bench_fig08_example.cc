// Fig. 8: the running example (Figs. 2/3) — dead space of each bounding
// method over the two leaf nodes {o1..o5} and {o6, o7}. The object layout
// mirrors the figure qualitatively; the printed dead-space percentages
// reproduce the paper's ordering MBC > MBB ~ RMBB > 4-C > 5-C ~ CH, with
// CBB_STA beating them all.
#include <span>

#include "common.h"
#include "core/clip_builder.h"
#include "geom/bounding.h"
#include "geom/union_volume.h"

namespace clipbb::bench {
namespace {

using geom::BoundingKind;
using geom::Rect2;

// Objects of the bottom leaf node (Fig. 2): a tall box top-left, small
// boxes along a rough diagonal, and a wide box bottom-right.
const std::vector<Rect2> kNode1 = {
    {{0.05, 0.55}, {0.22, 0.95}},  // o1
    {{0.10, 0.35}, {0.30, 0.52}},  // o2
    {{0.36, 0.22}, {0.55, 0.38}},  // o3
    {{0.58, 0.05}, {0.90, 0.30}},  // o4
    {{0.86, 0.12}, {0.98, 0.34}},  // o5
};

// Objects of the top leaf node (Fig. 3): two elongated boxes.
const std::vector<Rect2> kNode2 = {
    {{0.15, 0.60}, {0.80, 0.78}},  // o6
    {{0.55, 0.30}, {0.95, 0.55}},  // o7
};

double CbbDeadSpace(std::span<const Rect2> objects, core::ClipMode mode,
                    double* num_points) {
  const Rect2 mbb = geom::BoundingRect<2>(objects.begin(), objects.end());
  core::ClipConfig<2> cfg;
  cfg.mode = mode;
  const auto clips = core::BuildClips<2>(mbb, objects, cfg);
  std::vector<Rect2> regions;
  for (const auto& c : clips) regions.push_back(core::ClipRegion<2>(mbb, c));
  const double shape_area = mbb.Volume() - geom::UnionArea(regions);
  *num_points = 2.0 + static_cast<double>(clips.size());
  if (shape_area <= 0.0) return 0.0;
  return 1.0 - geom::UnionArea(objects) / shape_area;
}

void Run() {
  PrintHeader("Fig 8 — dead space of bounding methods on the running example");
  Table t({"method", "#points", "dead space (node {o1..o5})",
           "dead space (node {o6,o7})"});
  for (BoundingKind kind :
       {BoundingKind::kMbc, BoundingKind::kMbb, BoundingKind::kRmbb,
        BoundingKind::kC4, BoundingKind::kC5, BoundingKind::kCh}) {
    const auto s1 = geom::ComputeBounding(kind, kNode1);
    const auto s2 = geom::ComputeBounding(kind, kNode2);
    t.AddRow({geom::BoundingKindName(kind),
              Table::Fixed(0.5 * (s1.num_points + s2.num_points), 1),
              Table::Percent(geom::ShapeDeadSpaceFraction(kind, kNode1)),
              Table::Percent(geom::ShapeDeadSpaceFraction(kind, kNode2))});
  }
  for (core::ClipMode mode :
       {core::ClipMode::kSkyline, core::ClipMode::kStairline}) {
    double pts1 = 0.0, pts2 = 0.0;
    const double d1 = CbbDeadSpace(kNode1, mode, &pts1);
    const double d2 = CbbDeadSpace(kNode2, mode, &pts2);
    t.AddRow({core::ClipModeName(mode), Table::Fixed(0.5 * (pts1 + pts2), 1),
              Table::Percent(d1), Table::Percent(d2)});
  }
  t.Print();
}

}  // namespace
}  // namespace clipbb::bench

int main() {
  clipbb::bench::Run();
  return 0;
}
