// Fig. 15: query time on the scaled-up synthetic datasets with the index
// larger than memory. The paper uses 2^30 objects on a 500 GB HDD; we use
// 2^20 objects (CLIPBB_SCALE multiplies) and model the cold disk with an
// LRU buffer pool holding 10 % of the pages. Two modes per row:
//
//   sim    the original model — the pool only tracks residency and the
//          bench charges a synthetic HDD latency (8 ms) per miss;
//   paged  (with --paged) the real thing — the tree is serialized to a
//          page file and queried disk-resident through PagedRTree, so
//          "page reads" are physical preads through the buffer pool and
//          the time is measured, not simulated.
//
// Reported: average per-query time for HR-tree and RR*-tree, unclipped vs
// CSKY vs CSTA, under the paper-faithful workload schedule and the
// Hilbert-ordered batch schedule (pool misses are order-dependent, so the
// locality win is its own row, never mixed into the paper numbers).
//
// With --paged --threads=N an extra "paged-mtN" row runs the same batch
// through SpatialEngine::ExecuteBatch (rtree/query_api.h) over an
// N-way-sharded buffer pool with N workers — the "heavy traffic, many
// cores, disk-resident" scenario. The
// pool is sized to hold the section (no evictions), so each distinct page
// faults exactly once no matter how the workers interleave: per-query
// counts AND summed page reads must match the single-threaded run
// exactly, and the bench exits nonzero on any divergence (this is the CI
// parity gate for the concurrent pool).
#include "common.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <numeric>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "rtree/paged_rtree.h"
#include "rtree/query_api.h"
#include "storage/buffer_pool.h"

namespace clipbb::bench {
namespace {

constexpr double kMissMillis = 8.0;  // 7200RPM-class random read
constexpr int kQueriesPerProfile = 200;

bool g_paged = false;
unsigned g_threads = 1;  // >1 adds the multithreaded paged rows

// Observability ride-along, armed from the environment (CLIPBB_TRACE_*,
// CLIPBB_METRICS_OUT). Unarmed — the default, and the bench-regression
// baseline — the engine stays on its pre-obs fast path and every gated
// counter is byte-identical. Armed, the mt rows run instrumented and the
// bench self-checks the metrics snapshot against the summed IoStats of
// the same run, exiting nonzero on any divergence.
bool g_obs = false;
std::unique_ptr<obs::TraceCollector> g_traces;
rtree::EngineMetrics g_engine_metrics;

/// Range query that touches the buffer pool for every node read. The
/// caller-owned stack is reused across the batch (no per-query allocation).
template <int D>
size_t BufferedQuery(const rtree::RTree<D>& tree, const geom::Rect<D>& q,
                     storage::BufferPool* pool,
                     std::vector<storage::PageId>* stack_storage) {
  size_t found = 0;
  std::vector<storage::PageId>& stack = *stack_storage;
  stack.clear();
  stack.push_back(tree.root());
  while (!stack.empty()) {
    const storage::PageId id = stack.back();
    stack.pop_back();
    pool->Access(id);
    const auto& n = tree.NodeAt(id);
    if (n.IsLeaf()) {
      for (const auto& e : n.entries) {
        if (e.rect.Intersects(q)) ++found;
      }
    } else {
      for (const auto& e : n.entries) {
        if (!e.rect.Intersects(q)) continue;
        if (tree.clipping_enabled() &&
            core::ClipsPruneQuery<D>(tree.clip_index().Get(e.id), q)) {
          continue;
        }
        stack.push_back(e.id);
      }
    }
  }
  return found;
}

template <int D>
void RunTree(const std::string& dataset, const char* label,
             rtree::RTree<D>& tree,
             const std::vector<workload::QueryWorkload<D>>& profiles,
             Table* t) {
  // One paged dump per tree configuration; every profile/schedule run
  // below starts with a cleared (cold) pool over the same file.
  rtree::PagedRTree<D> paged;
  std::string paged_path;
  if (g_paged) {
    paged_path = BenchTempFile(dataset + "_fig15");
    if (!rtree::WritePagedTree<D>(tree, paged_path) ||
        !paged.Open(paged_path)) {
      std::fprintf(stderr, "fig15: cannot write/open paged index at %s\n",
                   paged_path.c_str());
      std::remove(paged_path.c_str());
      paged_path.clear();
    }
  }
  // Second handle for the multithreaded rows: sharded pool sized to hold
  // the whole file so physical reads are interleaving-independent (see
  // the file comment).
  rtree::PagedRTree<D> paged_mt;
  if (!paged_path.empty() && g_threads > 1) {
    typename rtree::PagedRTree<D>::OpenOptions mopts;
    // Capacity is split per shard, so size every SHARD to hold the whole
    // file — hash skew across stripes must never force an eviction, or
    // the parity gate below would depend on worker interleaving.
    mopts.pool_pages =
        (paged.superblock().num_section_pages + 8) * g_threads;
    mopts.pool_shards = g_threads;
    if (!paged_mt.Open(paged_path, mopts)) {
      std::fprintf(stderr, "fig15: cannot open paged index (mt) at %s\n",
                   paged_path.c_str());
      std::exit(1);
    }
  }
  for (size_t p = 0; p < profiles.size(); ++p) {
    // Warm nothing: start cold, let the pool cache hot paths like the OS
    // page cache in the paper's setup.
    std::vector<uint32_t> input_order(profiles[p].queries.size());
    std::iota(input_order.begin(), input_order.end(), 0u);
    const std::vector<uint32_t> workload_order = std::move(input_order);
    const std::vector<uint32_t> hilbert_order =
        rtree::HilbertQueryOrder<D>(tree.bounds(), profiles[p].queries);
    std::vector<storage::PageId> stack;
    stack.reserve(static_cast<size_t>(tree.Height()) *
                  static_cast<size_t>(tree.options().max_entries));
    for (const auto* sched : {&workload_order, &hilbert_order}) {
      const char* sched_name =
          sched == &workload_order ? "workload" : "hilbert";
      const std::string json_base = "fig15/" + dataset + "/" + label + "/" +
                                    workload::kQueryProfiles[p] + "/" +
                                    sched_name;
      {
        storage::BufferPool pool(
            std::max<size_t>(16, tree.NumNodes() / 10));
        Timer timer;
        size_t results = 0;
        for (uint32_t qi : *sched) {
          results += BufferedQuery<D>(tree, profiles[p].queries[qi], &pool,
                                      &stack);
        }
        const double cpu_s = timer.ElapsedSeconds();
        const double total_ms =
            cpu_s * 1e3 + static_cast<double>(pool.misses()) * kMissMillis;
        t->AddRow({dataset, label, workload::kQueryProfiles[p], sched_name,
                   "sim", Table::Fixed(total_ms / kQueriesPerProfile, 1),
                   Table::Int(static_cast<long long>(pool.misses())),
                   Table::Int(0),
                   Table::Fixed(static_cast<double>(results) /
                                    kQueriesPerProfile,
                                1)});
        JsonPut(json_base + "/sim.misses",
                static_cast<double>(pool.misses()));
        JsonPut(json_base + "/sim.results", static_cast<double>(results));
      }
      std::vector<size_t> counts_st(profiles[p].queries.size(), 0);
      if (!paged_path.empty()) {
        paged.pool().Clear();  // cold start, same 10 % frame budget
        rtree::TraversalScratch scratch;
        scratch.Reserve(paged.Height(), paged.max_entries());
        storage::IoStats io;
        Timer timer;
        size_t results = 0;
        for (uint32_t qi : *sched) {
          counts_st[qi] =
              paged.RangeCount(profiles[p].queries[qi], &io, &scratch);
          results += counts_st[qi];
        }
        const double total_ms = timer.ElapsedSeconds() * 1e3;
        t->AddRow({dataset, label, workload::kQueryProfiles[p], sched_name,
                   "paged", Table::Fixed(total_ms / kQueriesPerProfile, 3),
                   Table::Int(static_cast<long long>(io.page_reads)),
                   Table::Int(static_cast<long long>(io.page_writes)),
                   Table::Fixed(static_cast<double>(results) /
                                    kQueriesPerProfile,
                                1)});
        JsonPut(json_base + "/paged.page_reads",
                static_cast<double>(io.page_reads));
        JsonPut(json_base + "/paged.results",
                static_cast<double>(results));
        JsonPut(json_base + "/paged.avg_query_ms",
                total_ms / kQueriesPerProfile);
      }
      if (!paged_path.empty() && g_threads > 1) {
        const rtree::SpatialEngine<D> engine_mt(paged_mt);
        rtree::QueryBatchOptions bopts;
        bopts.hilbert_order = sched == &hilbert_order;
        // Deterministic reference on the same no-evict pool layout.
        paged_mt.pool().Clear();
        bopts.threads = 1;
        const rtree::QueryBatchResult ref = engine_mt.ExecuteBatch(
            std::span<const geom::Rect<D>>(profiles[p].queries), bopts);
        paged_mt.pool().Clear();
        bopts.threads = g_threads;
        if (g_obs) {
          engine_mt.SetMetrics(&g_engine_metrics);
          engine_mt.SetTraces(g_traces.get());
        }
        const uint64_t obs_q0 =
            g_engine_metrics.queries(rtree::QueryKind::kIntersects);
        Timer timer;
        const rtree::QueryBatchResult mt = engine_mt.ExecuteBatch(
            std::span<const geom::Rect<D>>(profiles[p].queries), bopts);
        const double total_ms = timer.ElapsedSeconds() * 1e3;
        engine_mt.SetMetrics(nullptr);
        engine_mt.SetTraces(nullptr);
        size_t results = 0;
        for (size_t qi = 0; qi < mt.counts.size(); ++qi) {
          results += mt.counts[qi];
        }
        // Parity gate: same per-query counts as both single-threaded
        // paths, and exactly the single-threaded physical read count.
        if (mt.counts != ref.counts || mt.counts != counts_st ||
            mt.io.page_reads != ref.io.page_reads || paged_mt.io_error()) {
          std::fprintf(stderr,
                       "fig15: --threads=%u parity mismatch (%s/%s/%s/%s): "
                       "mt reads %llu vs st %llu\n",
                       g_threads, dataset.c_str(), label,
                       workload::kQueryProfiles[p], sched_name,
                       static_cast<unsigned long long>(mt.io.page_reads),
                       static_cast<unsigned long long>(ref.io.page_reads));
          std::exit(1);
        }
        if (g_obs) {
          // Metrics/IoStats consistency gate: the flight recorder must
          // agree exactly with the per-thread-summed IoStats of the run
          // it observed — per-kind query count, pool pin totals (each
          // logical node access is one pin; misses are the physical
          // reads), and WAL syncs (none on the read path).
          const uint64_t obs_queries =
              g_engine_metrics.queries(rtree::QueryKind::kIntersects) -
              obs_q0;
          const uint64_t pins =
              paged_mt.pool().hits() + paged_mt.pool().misses();
          const uint64_t logical =
              mt.io.internal_accesses + mt.io.leaf_accesses;
          if (obs_queries != mt.counts.size() || pins != logical ||
              paged_mt.pool().misses() != mt.io.page_reads ||
              paged_mt.wal().stats().syncs != mt.io.wal_syncs) {
            std::fprintf(
                stderr,
                "fig15: obs consistency mismatch (%s/%s/%s/%s): "
                "queries %llu vs %zu, pins %llu vs logical %llu, "
                "misses %llu vs reads %llu, wal syncs %llu vs %llu\n",
                dataset.c_str(), label, workload::kQueryProfiles[p],
                sched_name, static_cast<unsigned long long>(obs_queries),
                mt.counts.size(), static_cast<unsigned long long>(pins),
                static_cast<unsigned long long>(logical),
                static_cast<unsigned long long>(paged_mt.pool().misses()),
                static_cast<unsigned long long>(mt.io.page_reads),
                static_cast<unsigned long long>(
                    paged_mt.wal().stats().syncs),
                static_cast<unsigned long long>(mt.io.wal_syncs));
            std::exit(1);
          }
          paged_mt.PublishMetrics(obs::MetricsRegistry::Global());
        }
        t->AddRow({dataset, label, workload::kQueryProfiles[p], sched_name,
                   "paged-mt" + std::to_string(g_threads),
                   Table::Fixed(total_ms / kQueriesPerProfile, 3),
                   Table::Int(static_cast<long long>(mt.io.page_reads)),
                   Table::Int(static_cast<long long>(mt.io.page_writes)),
                   Table::Fixed(static_cast<double>(results) /
                                    kQueriesPerProfile,
                                1)});
        JsonPut(json_base + "/paged_mt.page_reads",
                static_cast<double>(mt.io.page_reads));
        JsonPut(json_base + "/paged_mt.results",
                static_cast<double>(results));
        JsonPut(json_base + "/paged_mt.avg_query_ms",
                total_ms / kQueriesPerProfile);
      }
    }
  }
  if (!paged_path.empty()) {
    if (paged.io_error()) {
      std::fprintf(stderr,
                   "fig15: %s/%s paged rows are partial (I/O error)\n",
                   dataset.c_str(), label);
    }
    paged_mt.Close();
    paged.Close();
    std::remove(paged_path.c_str());
  }
}

void RunDataset(const std::string& name) {
  const size_t n = ScaledCount(1u << 20);
  workload::Dataset2 data2;
  workload::Dataset3 data3;
  Table t({"dataset", "index", "profile", "sched", "mode", "avg query ms",
           "page reads", "page writes", "avg results"});
  auto run_all = [&](auto& data) {
    using DataT = std::decay_t<decltype(data)>;
    constexpr int D = std::is_same_v<DataT, workload::Dataset2> ? 2 : 3;
    std::vector<workload::QueryWorkload<D>> profiles;
    for (double target : workload::kQueryTargets) {
      profiles.push_back(
          workload::MakeQueries<D>(data, target, kQueriesPerProfile));
    }
    for (rtree::Variant v :
         {rtree::Variant::kHilbert, rtree::Variant::kRRStar}) {
      auto tree = Build<D>(v, data);
      RunTree<D>(data.name, tree->Name(), *tree, profiles, &t);
      tree->EnableClipping(core::ClipConfig<D>::Sky());
      RunTree<D>(data.name, (std::string("CSKY-") + tree->Name()).c_str(),
                 *tree, profiles, &t);
      tree->EnableClipping(core::ClipConfig<D>::Sta());
      RunTree<D>(data.name, (std::string("CSTA-") + tree->Name()).c_str(),
                 *tree, profiles, &t);
    }
  };
  if (name == "par02") {
    data2 = workload::MakePar02(n);
    run_all(data2);
  } else {
    data3 = workload::MakePar03(n);
    run_all(data3);
  }
  std::string title = "Fig 15 — scaled-up " + name +
                      (g_paged ? " (sim: synthetic 8 ms/miss; paged: real "
                                 "disk-resident reads)"
                               : " (simulated cold-disk query time)");
  if (g_paged && g_threads > 1) {
    title += " [mt rows: " + std::to_string(g_threads) +
             " workers, sharded pool, parity-gated]";
  }
  PrintHeader(title);
  t.Print();
}

void Run() {
  RunDataset("par02");
  RunDataset("par03");
}

/// Flushes the observability artifacts after the tables: the metrics
/// exposition to CLIPBB_METRICS_OUT, the sampled traces as Chrome
/// trace-event JSON to CLIPBB_TRACE_OUT (default clipbb_trace.json), and
/// the end-to-end latency percentiles into the bench JSON (informational
/// suffixes — never gated).
bool FlushObs() {
  if (!g_obs) return true;
  g_engine_metrics.PublishTo(obs::MetricsRegistry::Global(), "paged");
  JsonPutHistogram("fig15/obs/query_intersects",
                   g_engine_metrics.query_ns[static_cast<int>(
                       rtree::QueryKind::kIntersects)]);
  JsonPutHistogram("fig15/obs/batch", g_engine_metrics.batch_ns);
  bool ok = true;
  if (const char* mout = std::getenv("CLIPBB_METRICS_OUT");
      mout != nullptr && *mout != '\0') {
    const std::string text = obs::MetricsRegistry::Global().RenderText();
    std::FILE* f = std::fopen(mout, "w");
    ok = f != nullptr &&
         std::fwrite(text.data(), 1, text.size(), f) == text.size();
    if (f != nullptr) ok = (std::fclose(f) == 0) && ok;
    if (!ok) std::fprintf(stderr, "fig15: cannot write %s\n", mout);
  }
  if (g_traces != nullptr) {
    const char* tout = std::getenv("CLIPBB_TRACE_OUT");
    const std::string path =
        tout != nullptr && *tout != '\0' ? tout : "clipbb_trace.json";
    if (!g_traces->WriteChromeTrace(path)) {
      std::fprintf(stderr, "fig15: cannot write %s\n", path.c_str());
      ok = false;
    } else {
      std::fprintf(stderr, "fig15: wrote %llu sampled traces to %s\n",
                   static_cast<unsigned long long>(g_traces->recorded()),
                   path.c_str());
    }
  }
  return ok;
}

}  // namespace
}  // namespace clipbb::bench

int main(int argc, char** argv) {
  clipbb::bench::g_paged = clipbb::bench::HasFlag(argc, argv, "--paged");
  const int threads =
      clipbb::bench::IntFlag(argc, argv, "--threads", 1);
  clipbb::bench::g_threads =
      threads > 1 ? static_cast<unsigned>(threads) : 1;
  clipbb::bench::EnableJsonFromArgs(argc, argv);
  clipbb::bench::g_traces = clipbb::obs::TraceCollector::FromEnv();
  const char* mout = std::getenv("CLIPBB_METRICS_OUT");
  clipbb::bench::g_obs = clipbb::bench::g_traces != nullptr ||
                         (mout != nullptr && *mout != '\0');
  clipbb::bench::Run();
  bool ok = clipbb::bench::FlushObs();
  ok = clipbb::bench::JsonSink::Get().Flush() && ok;
  return ok ? 0 : 1;
}
