// Table I: average % I/O reduction of skyline/stairline clipping per R-tree
// variant and query profile, averaged over the seven datasets (the paper's
// headline "skyline/stairline" cells, e.g. RR*-tree total 10/19).
#include "common.h"

namespace clipbb::bench {
namespace {

constexpr int kQueriesPerProfile = 200;
constexpr int kNumVariants = 4;

struct Accum {
  // reduction_sum[variant][profile], in percent.
  double sky[kNumVariants][3] = {};
  double sta[kNumVariants][3] = {};
  int datasets = 0;
};

template <int D>
void RunDataset(const std::string& name, Accum* acc) {
  const auto data = LoadDataset<D>(name);
  std::vector<workload::QueryWorkload<D>> profiles;
  for (double target : workload::kQueryTargets) {
    profiles.push_back(
        workload::MakeQueries<D>(data, target, kQueriesPerProfile));
  }
  int vi = 0;
  for (rtree::Variant v : rtree::kAllVariants) {
    auto tree = Build<D>(v, data);
    uint64_t plain[3], sky[3], sta[3];
    for (int p = 0; p < 3; ++p) {
      plain[p] = RunQueries<D>(*tree, profiles[p].queries).leaf_accesses;
    }
    tree->EnableClipping(core::ClipConfig<D>::Sky());
    for (int p = 0; p < 3; ++p) {
      sky[p] = RunQueries<D>(*tree, profiles[p].queries).leaf_accesses;
    }
    tree->EnableClipping(core::ClipConfig<D>::Sta());
    for (int p = 0; p < 3; ++p) {
      sta[p] = RunQueries<D>(*tree, profiles[p].queries).leaf_accesses;
    }
    for (int p = 0; p < 3; ++p) {
      if (plain[p] == 0) continue;
      acc->sky[vi][p] += 100.0 * (1.0 - static_cast<double>(sky[p]) /
                                            static_cast<double>(plain[p]));
      acc->sta[vi][p] += 100.0 * (1.0 - static_cast<double>(sta[p]) /
                                            static_cast<double>(plain[p]));
    }
    ++vi;
  }
  ++acc->datasets;
}

void Run() {
  Accum acc;
  for (const auto& name : DatasetNames<2>()) RunDataset<2>(name, &acc);
  for (const auto& name : DatasetNames<3>()) RunDataset<3>(name, &acc);

  PrintHeader(
      "Table I — avg % I/O reduction (skyline/stairline) per R-tree");
  Table t({"variant", "QR0", "QR1", "QR2", "Total"});
  double col_sky[4] = {}, col_sta[4] = {};
  int vi = 0;
  for (rtree::Variant v : rtree::kAllVariants) {
    std::vector<std::string> row{rtree::VariantName(v)};
    double tot_sky = 0.0, tot_sta = 0.0;
    for (int p = 0; p < 3; ++p) {
      const double s = acc.sky[vi][p] / acc.datasets;
      const double a = acc.sta[vi][p] / acc.datasets;
      tot_sky += s / 3.0;
      tot_sta += a / 3.0;
      col_sky[p] += s / kNumVariants;
      col_sta[p] += a / kNumVariants;
      row.push_back(Table::Fixed(s, 0) + "/" + Table::Fixed(a, 0));
    }
    col_sky[3] += tot_sky / kNumVariants;
    col_sta[3] += tot_sta / kNumVariants;
    row.push_back(Table::Fixed(tot_sky, 0) + "/" + Table::Fixed(tot_sta, 0));
    t.AddRow(std::move(row));
    ++vi;
  }
  t.AddRow({"Total", Table::Fixed(col_sky[0], 0) + "/" + Table::Fixed(col_sta[0], 0),
            Table::Fixed(col_sky[1], 0) + "/" + Table::Fixed(col_sta[1], 0),
            Table::Fixed(col_sky[2], 0) + "/" + Table::Fixed(col_sta[2], 0),
            Table::Fixed(col_sky[3], 0) + "/" + Table::Fixed(col_sta[3], 0)});
  t.Print();
}

}  // namespace
}  // namespace clipbb::bench

int main() {
  clipbb::bench::Run();
  return 0;
}
