// Fig. 14: memory-resident index construction time relative to the
// RR*-tree (100 %), with the CBB computation share of the clipped
// RR*-trees broken out.
#include "common.h"

namespace clipbb::bench {
namespace {

template <int D>
void RunDataset(const std::string& name, Table* t) {
  const auto data = LoadDataset<D>(name);

  Timer timer;
  auto rrstar = Build<D>(rtree::Variant::kRRStar, data);
  const double rrstar_s = timer.ElapsedSeconds();

  timer.Restart();
  auto hr = Build<D>(rtree::Variant::kHilbert, data);
  const double hr_s = timer.ElapsedSeconds();

  timer.Restart();
  auto rstar = Build<D>(rtree::Variant::kRStar, data);
  const double rstar_s = timer.ElapsedSeconds();

  // Clipped RR*: construction + clip computation (clip time isolated).
  double clip_s[2];
  int i = 0;
  for (core::ClipMode mode :
       {core::ClipMode::kSkyline, core::ClipMode::kStairline}) {
    core::ClipConfig<D> cfg;
    cfg.mode = mode;
    rrstar->ResetClipSeconds();
    rrstar->EnableClipping(cfg);
    clip_s[i++] = rrstar->clip_seconds();
  }

  auto rel = [&](double s) { return Table::Fixed(100.0 * s / rrstar_s, 0); };
  t->AddRow({name, rel(hr_s), rel(rstar_s), "100",
             rel(rrstar_s + clip_s[0]) + " (clip " + rel(clip_s[0]) + ")",
             rel(rrstar_s + clip_s[1]) + " (clip " + rel(clip_s[1]) + ")"});
}

void Run() {
  PrintHeader("Fig 14 — build time w.r.t. RR*-tree (100%)");
  Table t({"dataset", "HR-tree", "R*-tree", "RR*-tree", "CSKY-RR*-tree",
           "CSTA-RR*-tree"});
  for (const auto& name : DatasetNames<2>()) RunDataset<2>(name, &t);
  for (const auto& name : DatasetNames<3>()) RunDataset<3>(name, &t);
  t.Print();
}

}  // namespace
}  // namespace clipbb::bench

int main() {
  clipbb::bench::Run();
  return 0;
}
