// Extension bench: k-nearest-neighbour search with the CBB-aware MINDIST
// bound (rtree/knn.h) — node pops and leaf accesses vs the classic bound,
// per variant, on the neuroscience workload where dead space dominates.
#include "common.h"

#include "rtree/query_api.h"
#include "util/rng.h"

namespace clipbb::bench {
namespace {

constexpr int kQueries = 300;
constexpr int kK = 10;

void Run() {
  const auto data = LoadDataset3("axo03");
  // Query points: dithered object centers (dense regions queried most).
  Rng rng(0x1337);
  std::vector<geom::Vec3> points;
  for (int i = 0; i < kQueries; ++i) {
    const auto& e = data.items[rng.Below(data.items.size())];
    auto c = e.rect.Center();
    for (int k = 0; k < 3; ++k) c[k] += rng.Uniform(-0.01, 0.01);
    points.push_back(c);
  }

  PrintHeader("kNN (k=10) — CBB-aware MINDIST vs classic, axo03");
  Table t({"variant", "leafAcc plain", "leafAcc CSTA", "I/O reduction"});
  for (rtree::Variant v : rtree::kAllVariants) {
    auto tree = Build<3>(v, data);
    const rtree::SpatialEngine<3> engine(*tree);
    storage::IoStats plain;
    for (const auto& q : points) {
      engine.Execute(rtree::QuerySpec<3>::Knn(q, kK), /*sink=*/nullptr,
                     &plain);
    }
    tree->EnableClipping(core::ClipConfig<3>::Sta());
    storage::IoStats clipped;
    for (const auto& q : points) {
      engine.Execute(rtree::QuerySpec<3>::Knn(q, kK), /*sink=*/nullptr,
                     &clipped);
    }
    const double reduction =
        plain.leaf_accesses
            ? 1.0 - static_cast<double>(clipped.leaf_accesses) /
                        static_cast<double>(plain.leaf_accesses)
            : 0.0;
    t.AddRow({rtree::VariantName(v),
              Table::Int(static_cast<long long>(plain.leaf_accesses)),
              Table::Int(static_cast<long long>(clipped.leaf_accesses)),
              Table::Percent(reduction)});
  }
  t.Print();
}

}  // namespace
}  // namespace clipbb::bench

int main() {
  clipbb::bench::Run();
  return 0;
}
