// Fig. 10: average dead space per node and the fraction clipped away, for
// k = 1 .. 2^(d+1) clip points, skyline (a) and stairline (b) clipping, on
// par02/par03/rea02/axo03 across the four R-tree variants.
#include "common.h"

#include "stats/node_stats.h"

namespace clipbb::bench {
namespace {

template <int D>
void RunDataset(const std::string& name, Table* sky, Table* sta) {
  const auto data = LoadDataset<D>(name);
  const std::vector<int> ks = D == 2 ? std::vector<int>{1, 2, 4, 6, 8}
                                     : std::vector<int>{1, 4, 8, 12, 16};
  stats::SpaceOptions opts;
  opts.max_nodes = D == 2 ? 1024 : 384;
  if (D == 3) opts.mc_samples = 4096;

  for (rtree::Variant v : rtree::kAllVariants) {
    auto tree = Build<D>(v, data);
    for (auto [mode, table] :
         {std::pair{core::ClipMode::kSkyline, sky},
          std::pair{core::ClipMode::kStairline, sta}}) {
      std::vector<core::ClipConfig<D>> configs;
      for (int k : ks) {
        core::ClipConfig<D> cfg;
        cfg.mode = mode;
        cfg.max_clips = k;
        configs.push_back(cfg);
      }
      const auto reports =
          stats::MeasureClippingSweep<D>(*tree, configs, opts);
      for (size_t i = 0; i < ks.size(); ++i) {
        const auto& r = reports[i];
        table->AddRow({name, rtree::VariantName(v), Table::Int(ks[i]),
                       Table::Percent(r.avg_dead_fraction),
                       Table::Percent(r.avg_clipped_fraction),
                       Table::Percent(r.avg_remaining_fraction()),
                       Table::Fixed(r.avg_clip_points, 2)});
      }
    }
  }
}

void Run() {
  const std::vector<std::string> header = {
      "dataset", "variant",     "k",          "dead space",
      "clipped",  "remaining",  "avg #clips"};
  Table sky(header), sta(header);
  RunDataset<2>("par02", &sky, &sta);
  RunDataset<2>("rea02", &sky, &sta);
  RunDataset<3>("par03", &sky, &sta);
  RunDataset<3>("axo03", &sky, &sta);
  PrintHeader("Fig 10(a) — dead space clipped by CSKY points, varying k");
  sky.Print();
  PrintHeader("Fig 10(b) — dead space clipped by CSTA points, varying k");
  sta.Print();
}

}  // namespace
}  // namespace clipbb::bench

int main() {
  clipbb::bench::Run();
  return 0;
}
