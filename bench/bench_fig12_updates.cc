// Fig. 12: expected number of re-clipped CBBs per insertion — build each
// clipped tree on a random 90 % of the dataset, insert the remaining 10 %,
// and break re-clips down by cause (node split / MBB change / CBB-only).
#include <algorithm>

#include "common.h"
#include "util/rng.h"

namespace clipbb::bench {
namespace {

template <int D>
void RunDataset(const std::string& name, Table* t) {
  auto data = LoadDataset<D>(name);
  // Deterministic shuffle, then split 90/10.
  Rng rng(0xF16'12);
  for (size_t i = data.items.size(); i > 1; --i) {
    std::swap(data.items[i - 1], data.items[rng.Below(i)]);
  }
  const size_t cut = data.items.size() * 9 / 10;

  for (rtree::Variant v : rtree::kAllVariants) {
    workload::Dataset<D> bulk = data;
    bulk.items.resize(cut);
    auto tree = Build<D>(v, bulk);
    tree->EnableClipping(core::ClipConfig<D>::Sta());
    for (size_t i = cut; i < data.items.size(); ++i) {
      tree->Insert(data.items[i].rect, data.items[i].id);
    }
    const auto& s = tree->reclip_stats();
    const double n = static_cast<double>(s.inserts);
    t->AddRow({name, rtree::VariantName(v),
               Table::Fixed(s.splits / n, 3),
               Table::Fixed(s.mbb_changes / n, 3),
               Table::Fixed(s.cbb_changes / n, 3),
               Table::Fixed(s.TotalReclips() / n, 3)});
  }
}

void Run() {
  PrintHeader("Fig 12 — expected #re-clipped CBBs per insertion");
  Table t({"dataset", "variant", "node splits", "MBB changes", "CBB changes",
           "total/insert"});
  for (const auto& name : DatasetNames<2>()) RunDataset<2>(name, &t);
  for (const auto& name : DatasetNames<3>()) RunDataset<3>(name, &t);
  t.Print();
}

}  // namespace
}  // namespace clipbb::bench

int main() {
  clipbb::bench::Run();
  return 0;
}
