// Fig. 12: update cost of clip maintenance — build each clipped tree on a
// random 90 % of the dataset, insert the remaining 10 %, and break
// re-clips down by cause (node split / MBB change / CBB-only).
//
// Two modes per dataset/variant:
//
//   sim    the in-memory tree; re-clip counts per insertion (the paper's
//          Fig. 12 metric), no physical I/O.
//   paged  (with --paged) the read-write paged engine: the 90 % tree is
//          serialized to a page file, opened writable, and the remaining
//          10 % is inserted THROUGH THE PAGES in batches — page reads are
//          the pool faults of the update path, page writes the dirty
//          write-backs + the final checkpoint flush, and the WAL traffic
//          is reported alongside (all measured, not simulated). After
//          every batch the paged tree is parity-checked against an
//          in-memory tree fed the same insertions (results + logical I/O
//          on sample queries); any divergence aborts the bench.
#include <algorithm>
#include <cstdlib>

#include "common.h"
#include "rtree/paged_rtree.h"
#include "util/rng.h"

namespace clipbb::bench {
namespace {

bool g_paged = false;
constexpr int kBatches = 10;
constexpr int kParityQueries = 25;

template <int D>
void ParityCheck(const rtree::RTree<D>& ref, rtree::PagedRTree<D>* paged,
                 const workload::Dataset<D>& data, int batch) {
  Rng rng(0xBA7C + batch);
  for (int q = 0; q < kParityQueries; ++q) {
    geom::Rect<D> window;
    for (int d = 0; d < D; ++d) {
      const double span = data.domain.hi[d] - data.domain.lo[d];
      const double lo = data.domain.lo[d] + rng.Uniform() * span;
      window.lo[d] = lo;
      window.hi[d] = lo + 0.05 * span * rng.Uniform();
    }
    std::vector<rtree::ObjectId> a, b;
    storage::IoStats io_a, io_b;
    ref.RangeQuery(window, &a, &io_a);
    paged->RangeQuery(window, &b, &io_b);
    if (a != b || io_a.leaf_accesses != io_b.leaf_accesses ||
        io_a.internal_accesses != io_b.internal_accesses ||
        io_a.clip_accesses != io_b.clip_accesses) {
      std::fprintf(stderr,
                   "fig12: PARITY FAILURE after batch %d (query %d)\n",
                   batch, q);
      std::exit(1);
    }
  }
}

template <int D>
void RunDataset(const std::string& name, Table* t) {
  auto data = LoadDataset<D>(name);
  // Deterministic shuffle, then split 90/10.
  Rng rng(0xF16'12);
  for (size_t i = data.items.size(); i > 1; --i) {
    std::swap(data.items[i - 1], data.items[rng.Below(i)]);
  }
  const size_t cut = data.items.size() * 9 / 10;

  for (rtree::Variant v : rtree::kAllVariants) {
    workload::Dataset<D> bulk = data;
    bulk.items.resize(cut);
    auto tree = Build<D>(v, bulk);
    tree->EnableClipping(core::ClipConfig<D>::Sta());

    std::string paged_path;
    rtree::PagedRTree<D> paged;
    if (g_paged) {
      paged_path = BenchTempFile(name + "_fig12");
      typename rtree::PagedRTree<D>::OpenOptions wopts;
      wopts.mode = rtree::PagedRTree<D>::OpenMode::kReadWrite;
      wopts.commit_every = 32;  // group commit: one fsync per 32 inserts
      if (!rtree::WritePagedTree<D>(*tree, paged_path) ||
          !paged.Open(paged_path, wopts,
                      rtree::MakeRTree<D>(v, data.domain))) {
        // --paged was requested: running sim-only would let CI's
        // "parity-checked" smoke go green without testing anything.
        std::fprintf(stderr, "fig12: cannot write/open paged index at %s\n",
                     paged_path.c_str());
        std::remove(paged_path.c_str());
        std::exit(1);
      }
    }

    const size_t updates = data.items.size() - cut;
    const size_t per_batch = (updates + kBatches - 1) / kBatches;
    size_t next = cut;
    for (int batch = 0; batch < kBatches && next < data.items.size();
         ++batch) {
      const size_t end =
          std::min(data.items.size(), next + per_batch);
      for (; next < end; ++next) {
        tree->Insert(data.items[next].rect, data.items[next].id);
        if (!paged_path.empty() &&
            !paged.Insert(data.items[next].rect, data.items[next].id)) {
          std::fprintf(stderr, "fig12: paged insert failed\n");
          std::exit(1);
        }
      }
      if (!paged_path.empty()) {
        ParityCheck<D>(*tree, &paged, data, batch);
      }
    }

    const auto& s = tree->reclip_stats();
    const double n = static_cast<double>(s.inserts);
    t->AddRow({name, rtree::VariantName(v), "sim",
               Table::Fixed(s.splits / n, 3),
               Table::Fixed(s.mbb_changes / n, 3),
               Table::Fixed(s.cbb_changes / n, 3),
               Table::Fixed(s.TotalReclips() / n, 3), "-", "-", "-"});
    JsonPut("fig12/" + name + "/" + rtree::VariantName(v) +
                "/sim.reclips_per_insert",
            s.TotalReclips() / n);

    if (!paged_path.empty()) {
      // Fold the checkpoint flush into the write tally: those write-backs
      // are the deferred cost of the updates above.
      const uint64_t wb_before = paged.pool().writebacks();
      if (!paged.Checkpoint()) {
        std::fprintf(stderr, "fig12: checkpoint failed\n");
        std::exit(1);
      }
      storage::IoStats io = paged.update_io();
      io.page_writes += paged.pool().writebacks() - wb_before;
      t->AddRow({name, rtree::VariantName(v), "paged",
                 Table::Fixed(s.splits / n, 3),
                 Table::Fixed(s.mbb_changes / n, 3),
                 Table::Fixed(s.cbb_changes / n, 3),
                 Table::Fixed(s.TotalReclips() / n, 3),
                 Table::Fixed(io.page_reads / n, 2),
                 Table::Fixed(io.page_writes / n, 2),
                 Table::Fixed(io.wal_bytes / n / 1024.0, 1)});
      const std::string base =
          "fig12/" + name + "/" + rtree::VariantName(v);
      JsonPut(base + "/paged.page_reads_per_insert", io.page_reads / n);
      JsonPut(base + "/paged.page_writes_per_insert", io.page_writes / n);
      JsonPut(base + "/paged.wal_kib_per_insert",
              io.wal_bytes / n / 1024.0);
      if (paged.io_error()) {
        std::fprintf(stderr, "fig12: %s/%s paged run hit an I/O error\n",
                     name.c_str(), rtree::VariantName(v));
        std::exit(1);
      }
      paged.Close();
      std::remove(paged_path.c_str());
      std::remove(rtree::WalPathFor(paged_path).c_str());
    }
  }
}

void Run() {
  PrintHeader(
      std::string("Fig 12 — re-clipped CBBs per insertion") +
      (g_paged ? " + measured paged update I/O (reads/writes per insert, "
                 "WAL KiB per insert; parity-checked per batch)"
               : ""));
  Table t({"dataset", "variant", "mode", "node splits", "MBB changes",
           "CBB changes", "total/insert", "reads/ins", "writes/ins",
           "wal KiB/ins"});
  for (const auto& name : DatasetNames<2>()) RunDataset<2>(name, &t);
  for (const auto& name : DatasetNames<3>()) RunDataset<3>(name, &t);
  t.Print();
}

}  // namespace
}  // namespace clipbb::bench

int main(int argc, char** argv) {
  clipbb::bench::g_paged = clipbb::bench::HasFlag(argc, argv, "--paged");
  clipbb::bench::EnableJsonFromArgs(argc, argv);
  clipbb::bench::Run();
  return clipbb::bench::JsonSink::Get().Flush() ? 0 : 1;
}
