// Fig. 13: storage breakdown of clipped RR*-trees — bytes devoted to
// directory nodes, leaf nodes and clip points, plus the average number of
// clip points stored per node, for CSKY and CSTA.
#include "common.h"

#include "stats/storage_stats.h"

namespace clipbb::bench {
namespace {

template <int D>
void RunDataset(const std::string& name, Table* t) {
  const auto data = LoadDataset<D>(name);
  auto tree = Build<D>(rtree::Variant::kRRStar, data);
  for (core::ClipMode mode :
       {core::ClipMode::kSkyline, core::ClipMode::kStairline}) {
    core::ClipConfig<D> cfg;
    cfg.mode = mode;
    tree->EnableClipping(cfg);
    const auto b = stats::MeasureStorage<D>(*tree);
    const double total = static_cast<double>(b.TotalBytes());
    t->AddRow({name, core::ClipModeName(mode),
               Table::Percent(b.dir_bytes / total),
               Table::Percent(b.leaf_bytes / total),
               Table::Percent(b.clip_bytes / total),
               Table::Fixed(b.AvgClipPointsPerNode(), 1),
               Table::Fixed(total / (1024.0 * 1024.0), 1)});
  }
}

void Run() {
  PrintHeader("Fig 13 — CBB storage overhead (clipped RR*-trees)");
  Table t({"dataset", "mode", "dir nodes", "leaf nodes", "clip points",
           "avg #clips/node", "total MiB"});
  for (const auto& name : DatasetNames<2>()) RunDataset<2>(name, &t);
  for (const auto& name : DatasetNames<3>()) RunDataset<3>(name, &t);
  t.Print();
}

}  // namespace
}  // namespace clipbb::bench

int main() {
  clipbb::bench::Run();
  return 0;
}
