// Fig. 1: motivation measurements on rea02 (2d) and axo03 (3d).
//  (a) average fraction of node volume covered by >= 2 children (overlap)
//  (b) average dead space per node
//  (c) optimal/actual leaf accesses of the RR*-tree per query selectivity
#include "common.h"

#include "stats/node_stats.h"

namespace clipbb::bench {
namespace {

template <int D>
void RunDataset(const std::string& name, Table* overlap, Table* dead,
                Table* optimality) {
  const auto data = LoadDataset<D>(name);
  stats::SpaceOptions opts;
  opts.max_nodes = 1024;
  if (D == 3) opts.mc_samples = 4096;
  // The paper's Fig. 1a overlap is "averaged over all internal nodes".
  stats::SpaceOptions overlap_opts = opts;
  overlap_opts.measure_overlap = true;
  overlap_opts.internal_only = true;

  for (rtree::Variant v : rtree::kAllVariants) {
    auto tree = Build<D>(v, data);
    const auto report = stats::MeasureSpace<D>(*tree, opts);
    const auto over = stats::MeasureSpace<D>(*tree, overlap_opts);
    overlap->AddRow({name, rtree::VariantName(v),
                     Table::Percent(over.avg_overlap_fraction)});
    dead->AddRow({name, rtree::VariantName(v),
                  Table::Percent(report.avg_dead_fraction)});
    if (v == rtree::Variant::kRRStar) {
      // Fig 1c: fraction of accessed leaves that contribute results.
      static const char* kSelectivity[] = {"high", "medium", "low"};
      for (int p = 0; p < 3; ++p) {
        auto queries =
            workload::MakeQueries<D>(data, workload::kQueryTargets[p], 200);
        const auto io = RunQueries<D>(*tree, queries.queries);
        const double ratio =
            io.leaf_accesses
                ? static_cast<double>(io.contributing_leaf_accesses) /
                      io.leaf_accesses
                : 1.0;
        optimality->AddRow({name, kSelectivity[p], Table::Percent(ratio)});
      }
    }
  }
}

void Run() {
  Table overlap({"dataset", "variant", "avg overlap within node"});
  Table dead({"dataset", "variant", "avg dead space per node"});
  Table optimality({"dataset", "selectivity", "optimal/actual #leafAcc"});
  RunDataset<2>("rea02", &overlap, &dead, &optimality);
  RunDataset<3>("axo03", &overlap, &dead, &optimality);
  PrintHeader("Fig 1(a) — overlap (volume covered by >=2 children)");
  overlap.Print();
  PrintHeader("Fig 1(b) — dead space per node");
  dead.Print();
  PrintHeader("Fig 1(c) — I/O optimality of the RR*-tree");
  optimality.Print();
}

}  // namespace
}  // namespace clipbb::bench

int main() {
  clipbb::bench::Run();
  return 0;
}
