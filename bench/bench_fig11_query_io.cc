// Fig. 11: average leaf accesses of clipped R-trees relative to their
// unclipped counterparts (100 %), per query profile QR0/QR1/QR2, for all
// seven datasets and four variants, stairline (CSTA) clipping.
// Also prints the CSKY numbers used by Table I (see
// bench_table1_io_reduction for the aggregated table).
#include "common.h"

namespace clipbb::bench {
namespace {

constexpr int kQueriesPerProfile = 200;

template <int D>
void RunDataset(const std::string& name, Table* tables /*3 profiles*/) {
  const auto data = LoadDataset<D>(name);
  // Pre-generate the three calibrated workloads once per dataset.
  std::vector<workload::QueryWorkload<D>> profiles;
  for (double target : workload::kQueryTargets) {
    profiles.push_back(
        workload::MakeQueries<D>(data, target, kQueriesPerProfile));
  }
  for (rtree::Variant v : rtree::kAllVariants) {
    auto tree = Build<D>(v, data);
    std::vector<uint64_t> plain(3), sky(3), sta(3);
    for (int p = 0; p < 3; ++p) {
      plain[p] = RunQueries<D>(*tree, profiles[p].queries).leaf_accesses;
    }
    tree->EnableClipping(core::ClipConfig<D>::Sky());
    for (int p = 0; p < 3; ++p) {
      sky[p] = RunQueries<D>(*tree, profiles[p].queries).leaf_accesses;
    }
    tree->EnableClipping(core::ClipConfig<D>::Sta());
    for (int p = 0; p < 3; ++p) {
      sta[p] = RunQueries<D>(*tree, profiles[p].queries).leaf_accesses;
    }
    for (int p = 0; p < 3; ++p) {
      const double rel_sky = plain[p] ? 100.0 * sky[p] / plain[p] : 100.0;
      const double rel_sta = plain[p] ? 100.0 * sta[p] / plain[p] : 100.0;
      tables[p].AddRow({name, rtree::VariantName(v),
                        Table::Fixed(static_cast<double>(plain[p]) /
                                         kQueriesPerProfile,
                                     2),
                        Table::Fixed(rel_sky, 1), Table::Fixed(rel_sta, 1)});
    }
  }
}

void Run() {
  Table tables[3] = {
      Table({"dataset", "variant", "leafAcc/query (plain)", "CSKY %",
             "CSTA %"}),
      Table({"dataset", "variant", "leafAcc/query (plain)", "CSKY %",
             "CSTA %"}),
      Table({"dataset", "variant", "leafAcc/query (plain)", "CSKY %",
             "CSTA %"}),
  };
  for (const auto& name : DatasetNames<2>()) RunDataset<2>(name, tables);
  for (const auto& name : DatasetNames<3>()) RunDataset<3>(name, tables);
  for (int p = 0; p < 3; ++p) {
    PrintHeader(std::string("Fig 11(") + static_cast<char>('a' + p) +
                ") — avg #leafAcc w.r.t. unclipped (100%), profile " +
                workload::kQueryProfiles[p]);
    tables[p].Print();
  }
}

}  // namespace
}  // namespace clipbb::bench

int main() {
  clipbb::bench::Run();
  return 0;
}
