// Fig. 11: average leaf accesses of clipped R-trees relative to their
// unclipped counterparts (100 %), per query profile QR0/QR1/QR2, for all
// seven datasets and four variants, stairline (CSTA) clipping.
// Also prints the CSKY numbers used by Table I (see
// bench_table1_io_reduction for the aggregated table).
//
// With --paged each tree is additionally serialized and queried
// disk-resident through PagedRTree with a cold 10 % buffer pool, and a
// fourth table reports *real* page reads per query — the paper's headline
// claim (clipping cuts leaf-page accesses) measured as physical I/O
// rather than logical access counts.
#include "common.h"

#include <cstdio>

#include "rtree/paged_rtree.h"
#include "rtree/query_api.h"

namespace clipbb::bench {
namespace {

constexpr int kQueriesPerProfile = 200;

bool g_paged = false;

/// Real page reads per profile for the tree's current clipping config:
/// dump to a page file, reopen cold per profile, run the workload in
/// input order (paper-faithful schedule), count physical reads.
template <int D>
std::vector<uint64_t> PagedPageReads(
    const rtree::RTree<D>& tree, const std::string& stem,
    const std::vector<workload::QueryWorkload<D>>& profiles) {
  std::vector<uint64_t> reads(profiles.size(), 0);
  const std::string path = BenchTempFile(stem + "_fig11");
  rtree::PagedRTree<D> paged;
  if (!rtree::WritePagedTree<D>(tree, path) || !paged.Open(path)) {
    std::fprintf(stderr, "fig11: cannot write/open paged index at %s\n",
                 path.c_str());
    std::remove(path.c_str());
    return reads;
  }
  const rtree::SpatialEngine<D> engine(paged);
  rtree::TraversalScratch scratch;
  scratch.Reserve(engine.Height(), engine.max_entries());
  for (size_t p = 0; p < profiles.size(); ++p) {
    paged.pool().Clear();  // cold pool per profile
    storage::IoStats io;
    for (const auto& q : profiles[p].queries) {
      engine.Execute(rtree::QuerySpec<D>::Intersects(q), /*sink=*/nullptr,
                     &io, &scratch);
    }
    reads[p] = io.page_reads;
  }
  if (paged.io_error()) {
    std::fprintf(stderr, "fig11: %s paged reads are partial (I/O error)\n",
                 stem.c_str());
  }
  paged.Close();
  std::remove(path.c_str());
  return reads;
}

template <int D>
void RunDataset(const std::string& name, Table* tables /*3 profiles*/,
                Table* paged_table) {
  const auto data = LoadDataset<D>(name);
  // Pre-generate the three calibrated workloads once per dataset.
  std::vector<workload::QueryWorkload<D>> profiles;
  for (double target : workload::kQueryTargets) {
    profiles.push_back(
        workload::MakeQueries<D>(data, target, kQueriesPerProfile));
  }
  for (rtree::Variant v : rtree::kAllVariants) {
    auto tree = Build<D>(v, data);
    std::vector<uint64_t> plain(3), sky(3), sta(3);
    std::vector<uint64_t> pplain, psky, psta;
    for (int p = 0; p < 3; ++p) {
      plain[p] = RunQueries<D>(*tree, profiles[p].queries).leaf_accesses;
    }
    if (g_paged) pplain = PagedPageReads<D>(*tree, name, profiles);
    tree->EnableClipping(core::ClipConfig<D>::Sky());
    for (int p = 0; p < 3; ++p) {
      sky[p] = RunQueries<D>(*tree, profiles[p].queries).leaf_accesses;
    }
    if (g_paged) psky = PagedPageReads<D>(*tree, name, profiles);
    tree->EnableClipping(core::ClipConfig<D>::Sta());
    for (int p = 0; p < 3; ++p) {
      sta[p] = RunQueries<D>(*tree, profiles[p].queries).leaf_accesses;
    }
    if (g_paged) psta = PagedPageReads<D>(*tree, name, profiles);
    for (int p = 0; p < 3; ++p) {
      const double rel_sky = plain[p] ? 100.0 * sky[p] / plain[p] : 100.0;
      const double rel_sta = plain[p] ? 100.0 * sta[p] / plain[p] : 100.0;
      tables[p].AddRow({name, rtree::VariantName(v),
                        Table::Fixed(static_cast<double>(plain[p]) /
                                         kQueriesPerProfile,
                                     2),
                        Table::Fixed(rel_sky, 1), Table::Fixed(rel_sta, 1)});
      if (g_paged) {
        const double prel_sky =
            pplain[p] ? 100.0 * psky[p] / pplain[p] : 100.0;
        const double prel_sta =
            pplain[p] ? 100.0 * psta[p] / pplain[p] : 100.0;
        paged_table->AddRow(
            {name, rtree::VariantName(v), workload::kQueryProfiles[p],
             Table::Fixed(static_cast<double>(pplain[p]) /
                              kQueriesPerProfile,
                          2),
             Table::Fixed(prel_sky, 1), Table::Fixed(prel_sta, 1)});
      }
    }
  }
}

void Run() {
  Table tables[3] = {
      Table({"dataset", "variant", "leafAcc/query (plain)", "CSKY %",
             "CSTA %"}),
      Table({"dataset", "variant", "leafAcc/query (plain)", "CSKY %",
             "CSTA %"}),
      Table({"dataset", "variant", "leafAcc/query (plain)", "CSKY %",
             "CSTA %"}),
  };
  Table paged_table({"dataset", "variant", "profile",
                     "pageReads/query (plain)", "CSKY %", "CSTA %"});
  for (const auto& name : DatasetNames<2>()) {
    RunDataset<2>(name, tables, &paged_table);
  }
  for (const auto& name : DatasetNames<3>()) {
    RunDataset<3>(name, tables, &paged_table);
  }
  for (int p = 0; p < 3; ++p) {
    PrintHeader(std::string("Fig 11(") + static_cast<char>('a' + p) +
                ") — avg #leafAcc w.r.t. unclipped (100%), profile " +
                workload::kQueryProfiles[p]);
    tables[p].Print();
  }
  if (g_paged) {
    PrintHeader("Fig 11 paged — real page reads/query, disk-resident, "
                "cold 10% pool, w.r.t. unclipped (100%)");
    paged_table.Print();
  }
}

}  // namespace
}  // namespace clipbb::bench

int main(int argc, char** argv) {
  clipbb::bench::g_paged = clipbb::bench::HasFlag(argc, argv, "--paged");
  clipbb::bench::Run();
  return 0;
}
