// Layer-by-layer microbenchmarks of the flattened query hot path, with
// parity checks against the unflattened baselines:
//
//   1. clip-table lookup: unordered_map (seed layout) vs CSR arena
//   2. entry scan:        AoS scalar Intersects loop vs SoA IntersectsAll
//   3. traversal:         per-query stack + input order vs batched context
//                         with Hilbert scheduling
//   0. end-to-end:        the seed query path (AoS + map + fresh stack per
//                         query) vs the flattened path, same queries
//
// Run on a >= 100k-object uniform dataset (par02: uniform centers,
// heavy-tailed extents) and a clustered one (rea03: clustered 3d points).
// Every layer asserts identical results between baseline and flattened
// variants before reporting times.
#include <bit>
#include <cstdlib>
#include <functional>
#include <unordered_map>

#include "common.h"

#include "core/intersect.h"
#include "rtree/query_api.h"
#include "rtree/soa.h"

namespace clipbb::bench {
namespace {

constexpr int kQueries = 4000;
constexpr int kLookupPasses = 40;
constexpr int kScanWindows = 200;

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "PARITY FAILURE: %s\n", what);
    std::exit(1);
  }
}

double BestOf3(const std::function<void()>& fn) {
  double best = 1e100;
  for (int rep = 0; rep < 3; ++rep) {
    Timer t;
    fn();
    best = std::min(best, t.ElapsedSeconds());
  }
  return best;
}

/// The seed's query path, reproduced byte-for-byte: fresh stack per query,
/// AoS entry scans with short-circuit Intersects, clip lookups through an
/// unordered_map. Used as the end-to-end baseline.
template <int D>
size_t SeedRangeCount(
    const rtree::RTree<D>& tree, const geom::Rect<D>& q,
    const std::unordered_map<core::NodeId,
                             std::vector<core::ClipPoint<D>>>& clip_map) {
  size_t found = 0;
  std::vector<storage::PageId> stack{tree.root()};
  while (!stack.empty()) {
    const storage::PageId id = stack.back();
    stack.pop_back();
    const rtree::Node<D>& n = tree.NodeAt(id);
    if (n.IsLeaf()) {
      for (const rtree::Entry<D>& e : n.entries) {
        if (e.rect.Intersects(q)) ++found;
      }
    } else {
      for (const rtree::Entry<D>& e : n.entries) {
        if (!e.rect.Intersects(q)) continue;
        if (tree.clipping_enabled()) {
          const auto it = clip_map.find(e.id);
          if (it != clip_map.end() &&
              core::ClipsPruneQuery<D>(
                  std::span<const core::ClipPoint<D>>(it->second), q)) {
            continue;
          }
        }
        stack.push_back(e.id);
      }
    }
  }
  return found;
}

template <int D>
void RunDataset(const workload::Dataset<D>& data, Table* table) {
  auto tree = rtree::BuildTree<D>(rtree::Variant::kHilbert, data.items,
                                  data.domain);
  tree->EnableClipping(core::ClipConfig<D>::Sta());
  tree->RefreshAccel();
  Check(tree->AccelFresh(), "accel fresh after refresh");
  Check(tree->clip_index().IsCompact(), "clip arena compact");

  const auto workload =
      workload::MakeQueries<D>(data, 10.0, kQueries, 1234);
  const auto& queries = workload.queries;

  // ------------------------------------------------ 1. clip-table lookup
  // The id stream a real traversal issues: every internal entry's child id,
  // repeated over passes.
  std::vector<core::NodeId> lookup_ids;
  tree->ForEachNode([&](storage::PageId, const rtree::Node<D>& n) {
    if (n.IsLeaf()) return;
    for (const auto& e : n.entries) lookup_ids.push_back(e.id);
  });
  std::unordered_map<core::NodeId, std::vector<core::ClipPoint<D>>> clip_map;
  tree->clip_index().ForEach(
      [&](core::NodeId id, std::span<const core::ClipPoint<D>> clips) {
        clip_map[id].assign(clips.begin(), clips.end());
      });

  size_t map_sum = 0, arena_sum = 0;
  const double map_s = BestOf3([&] {
    map_sum = 0;
    for (int pass = 0; pass < kLookupPasses; ++pass) {
      for (core::NodeId id : lookup_ids) {
        const auto it = clip_map.find(id);
        if (it != clip_map.end()) map_sum += it->second.size();
      }
    }
  });
  const double arena_s = BestOf3([&] {
    arena_sum = 0;
    const auto& idx = tree->clip_index();
    for (int pass = 0; pass < kLookupPasses; ++pass) {
      for (core::NodeId id : lookup_ids) arena_sum += idx.Get(id).size();
    }
  });
  Check(map_sum == arena_sum, "clip lookup sums");
  const double lookups =
      static_cast<double>(lookup_ids.size()) * kLookupPasses;
  table->AddRow({data.name, "clip lookup", "map", "arena",
                 Table::Fixed(map_s / lookups * 1e9, 2),
                 Table::Fixed(arena_s / lookups * 1e9, 2),
                 Table::Fixed(map_s / arena_s, 2)});
  JsonPut("hotpath/" + data.name + "/clip_lookup.arena_ns",
          arena_s / lookups * 1e9);
  JsonPut("hotpath/" + data.name + "/clip_lookup.checksum",
          static_cast<double>(arena_sum));

  // --------------------------------------------------- 2. AoS vs SoA scan
  // Replays exactly the node scans a real query workload performs: the
  // (window, node) pairs the traversal visits. Within a visited node the
  // hit rate is substantial (that's why it was visited), so the
  // short-circuit AoS loop pays for branch mispredictions while the
  // branch-light kernel's cost is selectivity-independent.
  std::vector<std::pair<uint32_t, storage::PageId>> visits;
  {
    rtree::TraversalScratch tmp;
    for (uint32_t qi = 0; qi < queries.size(); ++qi) {
      auto& stack = tmp.stack;
      stack.clear();
      stack.push_back(tree->root());
      while (!stack.empty()) {
        const storage::PageId id = stack.back();
        stack.pop_back();
        visits.emplace_back(qi, id);
        const auto& n = tree->NodeAt(id);
        if (n.IsLeaf()) continue;
        for (const auto& e : n.entries) {
          if (!e.rect.Intersects(queries[qi])) continue;
          if (core::ClipsPruneQuery<D>(tree->clip_index().Get(e.id),
                                       queries[qi])) {
            continue;
          }
          stack.push_back(e.id);
        }
      }
    }
  }
  rtree::TraversalScratch scratch;
  size_t aos_hits = 0, soa_hits = 0;
  const double aos_s = BestOf3([&] {
    aos_hits = 0;
    for (const auto& [qi, id] : visits) {
      const auto& q = queries[qi];
      for (const auto& e : tree->NodeAt(id).entries) {
        if (e.rect.Intersects(q)) ++aos_hits;
      }
    }
  });
  const double soa_s = BestOf3([&] {
    soa_hits = 0;
    for (const auto& [qi, id] : visits) {
      const rtree::SoaNodeView<D> v = tree->soa().NodeView(id);
      uint64_t* mask = scratch.MaskFor(v.n);
      rtree::IntersectsAll<D>(v, queries[qi], mask, scratch.FlagsFor(v.n));
      for (uint32_t word = 0; word * 64 < v.n; ++word) {
        soa_hits += static_cast<size_t>(std::popcount(mask[word]));
      }
    }
  });
  Check(aos_hits == soa_hits, "scan hit counts");
  table->AddRow({data.name, "entry scan", "AoS", "SoA",
                 Table::Fixed(aos_s * 1e3, 2), Table::Fixed(soa_s * 1e3, 2),
                 Table::Fixed(aos_s / soa_s, 2)});
  JsonPut("hotpath/" + data.name + "/entry_scan.soa_ms", soa_s * 1e3);
  JsonPut("hotpath/" + data.name + "/entry_scan.visits",
          static_cast<double>(visits.size()));
  JsonPut("hotpath/" + data.name + "/entry_scan.hits",
          static_cast<double>(soa_hits));

  // -------------------------------------- 3. single vs batched traversal
  size_t single_total = 0, batch_total = 0;
  const double single_s = BestOf3([&] {
    single_total = 0;
    for (const auto& q : queries) single_total += tree->RangeCount(q);
  });
  double batch_s;
  {
    const rtree::SpatialEngine<D> engine(*tree);
    rtree::QueryBatchOptions opts;  // Hilbert order, 1 thread
    batch_s = BestOf3([&] {
      const auto r = engine.ExecuteBatch(
          std::span<const geom::Rect<D>>(queries), opts);
      batch_total = 0;
      for (size_t c : r.counts) batch_total += c;
    });
  }
  Check(single_total == batch_total, "traversal result totals");
  table->AddRow({data.name, "traversal", "single", "batched",
                 Table::Fixed(single_s * 1e3, 1),
                 Table::Fixed(batch_s * 1e3, 1),
                 Table::Fixed(single_s / batch_s, 2)});

  // ------------------------------------------------------ 0. end-to-end
  size_t seed_total = 0;
  const double seed_s = BestOf3([&] {
    seed_total = 0;
    for (const auto& q : queries) {
      seed_total += SeedRangeCount<D>(*tree, q, clip_map);
    }
  });
  Check(seed_total == batch_total, "end-to-end result totals");
  table->AddRow({data.name, "end-to-end", "seed path", "flattened",
                 Table::Fixed(seed_s * 1e3, 1), Table::Fixed(batch_s * 1e3, 1),
                 Table::Fixed(seed_s / batch_s, 2)});
  JsonPut("hotpath/" + data.name + "/end_to_end.flattened_ms",
          batch_s * 1e3);
  JsonPut("hotpath/" + data.name + "/end_to_end.results",
          static_cast<double>(batch_total));

  // Per-query latency percentiles from ONE extra instrumented pass,
  // outside every timed region above — the BestOf3 numbers (and the <2%
  // overhead contract they gate) never see the flight recorder.
  {
    const rtree::SpatialEngine<D> engine(*tree);
    rtree::EngineMetrics metrics;
    size_t obs_total = 0;
    RunQueries<D>(engine, queries, &obs_total, &metrics);
    Check(obs_total == batch_total, "instrumented-pass result totals");
    Check(metrics.queries(rtree::QueryKind::kIntersects) == queries.size(),
          "instrumented-pass query count");
    JsonPutHistogram("hotpath/" + data.name + "/end_to_end.query",
                     metrics.query_ns[static_cast<int>(
                         rtree::QueryKind::kIntersects)]);
  }
}

void Run() {
  Table t({"dataset", "layer", "baseline", "flattened", "base (ns|ms)",
           "flat (ns|ms)", "speedup"});
  const auto uniform = workload::MakePar02(ScaledCount(120'000));
  RunDataset<2>(uniform, &t);
  const auto clustered = workload::MakeRea03(ScaledCount(150'000));
  RunDataset<3>(clustered, &t);
  PrintHeader(
      "Hot path — per-layer speedups (clip lookup ns/op, scan+traversal ms "
      "per workload); parity-checked");
  t.Print();
}

}  // namespace
}  // namespace clipbb::bench

int main(int argc, char** argv) {
  clipbb::bench::EnableJsonFromArgs(argc, argv);
  clipbb::bench::Run();
  return clipbb::bench::JsonSink::Get().Flush() ? 0 : 1;
}
