// Micro-benchmarks (google-benchmark): the cost of Algorithm 2 relative to
// the plain MBB intersection test, and of clip construction (Algorithm 1)
// in both modes. Supports the paper's claim that the clip test is cheaper
// than the preceding MBB test.
#include <benchmark/benchmark.h>

#include "core/clip_builder.h"
#include "core/intersect.h"
#include "util/rng.h"
#include "workload/dataset.h"

namespace clipbb {
namespace {

using geom::Rect2;
using geom::Rect3;

// Synthetic node: `n` child boxes in the unit square.
template <int D>
std::vector<geom::Rect<D>> MakeChildren(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<geom::Rect<D>> rs;
  rs.reserve(n);
  for (int i = 0; i < n; ++i) {
    geom::Vec<D> c, h;
    for (int k = 0; k < D; ++k) c[k] = rng.Uniform(0.1, 0.9);
    for (int k = 0; k < D; ++k) h[k] = rng.Uniform(0.005, 0.05);
    geom::Rect<D> r;
    for (int k = 0; k < D; ++k) {
      r.lo[k] = c[k] - h[k];
      r.hi[k] = c[k] + h[k];
    }
    rs.push_back(r);
  }
  return rs;
}

template <int D>
std::vector<geom::Rect<D>> MakeQueries(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<geom::Rect<D>> qs;
  qs.reserve(n);
  for (int i = 0; i < n; ++i) {
    geom::Vec<D> c;
    for (int k = 0; k < D; ++k) c[k] = rng.Uniform();
    geom::Rect<D> q;
    for (int k = 0; k < D; ++k) {
      q.lo[k] = c[k] - 0.01;
      q.hi[k] = c[k] + 0.01;
    }
    qs.push_back(q);
  }
  return qs;
}

void BM_MbbIntersect2d(benchmark::State& state) {
  const auto children = MakeChildren<2>(64, 1);
  const Rect2 mbb = geom::BoundingRect<2>(children.begin(), children.end());
  const auto queries = MakeQueries<2>(1024, 2);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mbb.Intersects(queries[i++ & 1023]));
  }
}
BENCHMARK(BM_MbbIntersect2d);

template <int D>
void BM_CbbIntersect(benchmark::State& state) {
  const auto children = MakeChildren<D>(64, 1);
  const geom::Rect<D> mbb =
      geom::BoundingRect<D>(children.begin(), children.end());
  core::ClipConfig<D> cfg;
  cfg.max_clips = static_cast<int>(state.range(0));
  cfg.tau = 0.0;
  const auto clips = core::BuildClips<D>(mbb, children, cfg);
  const auto queries = MakeQueries<D>(1024, 2);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::CbbIntersects<D>(mbb, clips, queries[i++ & 1023]));
  }
  state.counters["clips"] = static_cast<double>(clips.size());
}
BENCHMARK(BM_CbbIntersect<2>)->Arg(1)->Arg(4)->Arg(8);
BENCHMARK(BM_CbbIntersect<3>)->Arg(1)->Arg(8)->Arg(16);

template <int D>
void BM_BuildClipsSky(benchmark::State& state) {
  const auto children =
      MakeChildren<D>(static_cast<int>(state.range(0)), 3);
  const geom::Rect<D> mbb =
      geom::BoundingRect<D>(children.begin(), children.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::BuildClips<D>(mbb, children, core::ClipConfig<D>::Sky()));
  }
}
BENCHMARK(BM_BuildClipsSky<2>)->Arg(32)->Arg(102);
BENCHMARK(BM_BuildClipsSky<3>)->Arg(32)->Arg(73);

template <int D>
void BM_BuildClipsSta(benchmark::State& state) {
  const auto children =
      MakeChildren<D>(static_cast<int>(state.range(0)), 3);
  const geom::Rect<D> mbb =
      geom::BoundingRect<D>(children.begin(), children.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::BuildClips<D>(mbb, children, core::ClipConfig<D>::Sta()));
  }
}
BENCHMARK(BM_BuildClipsSta<2>)->Arg(32)->Arg(102);
BENCHMARK(BM_BuildClipsSta<3>)->Arg(32)->Arg(73);

void BM_Skyline2d(benchmark::State& state) {
  const auto children =
      MakeChildren<2>(static_cast<int>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::OrientedSkyline<2>(
        core::CornerPoints<2>(children, 0), 0));
  }
}
BENCHMARK(BM_Skyline2d)->Arg(32)->Arg(102);

}  // namespace
}  // namespace clipbb
