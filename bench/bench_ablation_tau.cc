// Ablation the paper notes it lacked space for (§V-A): varying the
// clipped-volume threshold tau. Reports, for the RR*-tree on one 2d and
// one 3d dataset, how tau trades stored clip points (storage) against
// query I/O savings.
#include "common.h"

#include "stats/storage_stats.h"

namespace clipbb::bench {
namespace {

constexpr int kQueries = 200;

template <int D>
void RunDataset(const std::string& name, Table* t) {
  const auto data = LoadDataset<D>(name);
  auto tree = Build<D>(rtree::Variant::kRRStar, data);
  const auto queries = workload::MakeQueries<D>(data, 10.0, kQueries);
  const uint64_t plain =
      RunQueries<D>(*tree, queries.queries).leaf_accesses;

  for (double tau : {0.0, 0.01, 0.025, 0.05, 0.10, 0.25}) {
    core::ClipConfig<D> cfg = core::ClipConfig<D>::Sta();
    cfg.tau = tau;
    tree->EnableClipping(cfg);
    const uint64_t clipped =
        RunQueries<D>(*tree, queries.queries).leaf_accesses;
    const auto storage = stats::MeasureStorage<D>(*tree);
    t->AddRow({name, Table::Percent(tau, 1),
               Table::Fixed(storage.AvgClipPointsPerNode(), 2),
               Table::Percent(storage.ClipFraction(), 2),
               Table::Fixed(plain ? 100.0 * clipped / plain : 100.0, 1)});
  }
}

void Run() {
  PrintHeader("Ablation — tau threshold (CSTA-RR*-tree, QR1 queries)");
  Table t({"dataset", "tau", "avg #clips/node", "clip storage",
           "leafAcc w.r.t. unclipped (%)"});
  RunDataset<2>("rea02", &t);
  RunDataset<3>("axo03", &t);
  t.Print();
}

}  // namespace
}  // namespace clipbb::bench

int main() {
  clipbb::bench::Run();
  return 0;
}
