// Ablation: clipping across index structures beyond the paper's four —
// the linear-split R-tree (LR) and the MX-CIF quadtree baseline from the
// related-work discussion (§II: space-oriented partitions contain dead
// space by definition and cannot be clipped the same way; measuring both
// quantifies the R-tree/CBB advantage).
#include "common.h"

#include "quadtree/quadtree.h"
#include "rtree/linear.h"
#include "rtree/prtree.h"
#include "workload/grid.h"

namespace clipbb::bench {
namespace {

constexpr int kQueries = 200;

template <int D>
void RunDataset(const std::string& name, Table* t) {
  const auto data = LoadDataset<D>(name);
  const auto queries = workload::MakeQueries<D>(data, 10.0, kQueries);

  // Linear R-tree + clipping.
  {
    rtree::LinearRTree<D> tree;
    for (const auto& e : data.items) tree.Insert(e.rect, e.id);
    const uint64_t plain =
        RunQueries<D>(tree, queries.queries).leaf_accesses;
    tree.EnableClipping(core::ClipConfig<D>::Sta());
    const uint64_t clipped =
        RunQueries<D>(tree, queries.queries).leaf_accesses;
    t->AddRow({name, "LR-tree", Table::Int(static_cast<long long>(plain)),
               Table::Int(static_cast<long long>(clipped)),
               Table::Percent(plain ? 1.0 - static_cast<double>(clipped) /
                                                static_cast<double>(plain)
                                    : 0.0)});
  }
  // PR-tree bulk load + clipping.
  {
    rtree::GuttmanRTree<D> tree;
    rtree::PrTreeBulkLoad<D>(&tree, data.items);
    const uint64_t plain =
        RunQueries<D>(tree, queries.queries).leaf_accesses;
    tree.EnableClipping(core::ClipConfig<D>::Sta());
    const uint64_t clipped =
        RunQueries<D>(tree, queries.queries).leaf_accesses;
    t->AddRow({name, "PR-tree (bulk)",
               Table::Int(static_cast<long long>(plain)),
               Table::Int(static_cast<long long>(clipped)),
               Table::Percent(plain ? 1.0 - static_cast<double>(clipped) /
                                                static_cast<double>(plain)
                                    : 0.0)});
  }
  // Space-oriented baselines (clipping does not apply; for context).
  {
    quadtree::Quadtree<D> qt(data.domain, /*capacity=*/32);
    for (const auto& e : data.items) {
      qt.Insert(e.rect.Intersection(data.domain), e.id);
    }
    storage::IoStats io;
    for (const auto& q : queries.queries) qt.RangeCount(q, &io);
    t->AddRow({name, "MX-CIF quadtree",
               Table::Int(static_cast<long long>(io.leaf_accesses)), "-",
               "-"});
  }
  {
    workload::UniformGrid<D> grid(data.domain, D == 2 ? 64 : 16);
    for (const auto& e : data.items) grid.Insert(e.rect, e.id);
    storage::IoStats io;
    for (const auto& q : queries.queries) grid.RangeCount(q, &io);
    t->AddRow({name, "uniform grid",
               Table::Int(static_cast<long long>(io.leaf_accesses)), "-",
               "-"});
  }
}

void Run() {
  PrintHeader(
      "Ablation — beyond the paper's variants (QR1 queries, leaf accesses)");
  Table t({"dataset", "index", "leafAcc plain", "leafAcc CSTA",
           "I/O reduction"});
  RunDataset<2>("rea02", &t);
  RunDataset<3>("axo03", &t);
  t.Print();
}

}  // namespace
}  // namespace clipbb::bench

int main() {
  clipbb::bench::Run();
  return 0;
}
