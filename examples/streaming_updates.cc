// Update maintenance scenario (§IV-D): a clipped index under a live
// insert/delete stream. Shows the lazy-deletion / eager-insertion rules in
// action: re-clips stay far below one per insert and deletions are free
// unless the MBB shrinks.
#include <cstdio>

#include "rtree/factory.h"
#include "rtree/validate.h"
#include "util/rng.h"
#include "workload/dataset.h"

using namespace clipbb;  // NOLINT: example brevity

int main() {
  auto streets = workload::MakeRea02(80'000);
  // Start with 80 % of the data; stream the rest in while retiring old
  // objects (a city map under construction).
  const size_t initial = streets.size() * 8 / 10;

  auto tree = rtree::MakeRTree<2>(rtree::Variant::kRStar, streets.domain);
  for (size_t i = 0; i < initial; ++i) {
    tree->Insert(streets.items[i].rect, streets.items[i].id);
  }
  tree->EnableClipping(core::ClipConfig<2>::Sta());
  std::printf("initial index: %zu objects, %zu clip points\n",
              tree->NumObjects(), tree->clip_index().TotalClipPoints());

  Rng rng(7);
  size_t deletes = 0;
  for (size_t i = initial; i < streets.size(); ++i) {
    tree->Insert(streets.items[i].rect, streets.items[i].id);
    if (rng.Uniform() < 0.5) {
      // Retire a random old street segment.
      const size_t victim = rng.Below(initial);
      deletes += tree->Delete(streets.items[victim].rect,
                              streets.items[victim].id);
    }
  }

  const auto& s = tree->reclip_stats();
  std::printf("streamed %llu inserts + %zu deletes\n",
              static_cast<unsigned long long>(s.inserts), deletes);
  std::printf("re-clips/insert: %.3f  (splits %.3f, MBB changes %.3f, "
              "CBB-only %.3f)\n",
              static_cast<double>(s.TotalReclips()) / s.inserts,
              static_cast<double>(s.splits) / s.inserts,
              static_cast<double>(s.mbb_changes) / s.inserts,
              static_cast<double>(s.cbb_changes) / s.inserts);

  const auto res = rtree::ValidateTree<2>(*tree);
  std::printf("validation after stream: %s\n", res.ok ? "OK" : "FAILED");
  if (!res.ok) std::printf("%s", res.Summary().c_str());
  return res.ok ? 0 : 1;
}
