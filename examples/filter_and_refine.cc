// Filter-and-refine pipeline (multi-step query processing, the paper's
// [20]): the clipped R-tree filters street segments on (C)BBs, then exact
// capsule geometry refines the candidates. Clipping reduces the I/O of the
// filter step; the candidate set itself is identical (clip points prune
// node *accesses*, object-level MBB tests are unchanged) — exactly the
// paper's plug-in property.
#include <cstdio>

#include "geom/segment.h"
#include "rtree/factory.h"
#include "util/rng.h"
#include "workload/query.h"

using namespace clipbb;  // NOLINT: example brevity

int main() {
  // Street-like capsules: thin, axis-leaning segments.
  Rng rng(11);
  const size_t n = 80'000;
  std::vector<geom::Segment2> segments;
  std::vector<rtree::Entry<2>> items;
  workload::Dataset2 data;
  data.name = "streets";
  data.domain = {{0, 0}, {1, 1}};
  for (size_t i = 0; i < n; ++i) {
    geom::Vec2 a{rng.Uniform(), rng.Uniform()};
    const double angle = rng.Uniform(0.0, 6.283185307179586);
    const double len = rng.Uniform(0.002, 0.03);
    geom::Vec2 b{a[0] + len * std::cos(angle), a[1] + len * std::sin(angle)};
    segments.push_back({a, b, 1e-5});
    items.push_back({segments.back().Mbb(), static_cast<int64_t>(i)});
  }
  data.items = items;

  auto tree =
      rtree::BuildTree<2>(rtree::Variant::kRStar, items, data.domain);
  const auto queries = workload::MakeQueries<2>(data, 10.0, 500);

  auto run = [&](const char* label) {
    storage::IoStats io;
    size_t candidates = 0, results = 0;
    for (const auto& q : queries.queries) {
      std::vector<rtree::ObjectId> cand;
      tree->RangeQuery(q, &cand, &io);
      candidates += cand.size();
      for (rtree::ObjectId id : cand) {
        if (geom::SegmentIntersectsRect(segments[id], q)) ++results;
      }
    }
    std::printf("%-14s leafAcc=%llu candidates=%zu exact results=%zu "
                "(precision %.1f%%)\n",
                label, static_cast<unsigned long long>(io.leaf_accesses),
                candidates, results,
                candidates ? 100.0 * results / candidates : 100.0);
    return results;
  };

  const size_t plain = run("MBB filter:");
  tree->EnableClipping(core::ClipConfig<2>::Sta());
  const size_t clipped = run("CBB filter:");
  return plain == clipped ? 0 : 1;
}
