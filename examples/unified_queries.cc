// The unified query API, end to end: build one clipped R-tree, front it
// with SpatialEngine twice — once in memory, once disk-resident from a
// page file — and run the SAME five QuerySpecs (range, point stabbing,
// containment, enclosure, kNN) through both. One code path, two storage
// engines: identical results and logical I/O, with the paged run
// additionally reporting the physical page reads it cost.
//
//   $ ./examples/example_unified_queries
//
// Demonstrates: QuerySpec factories, result sinks (CollectIds /
// CountOnly / KnnHeapSink / CallbackSink), SpatialEngine::Execute and
// ::ExecuteBatch, and the shared IoStats accounting.
#include <cstdio>
#include <string>
#include <vector>

#include "rtree/factory.h"
#include "rtree/paged_rtree.h"
#include "rtree/query_api.h"
#include "stats/tree_report.h"
#include "workload/dataset.h"

using namespace clipbb;  // NOLINT: example brevity

namespace {

/// One spec through one engine; prints count + the shared IoStats.
void Show(const char* what, const rtree::SpatialEngine<2>& engine,
          const rtree::QuerySpec<2>& spec) {
  storage::IoStats io;
  const size_t n = engine.Execute(spec, /*sink=*/nullptr, &io);
  std::printf("  %-14s %-6s -> %5zu results | %s\n", what,
              engine.backend_name(), n, stats::FormatIoStats(io).c_str());
}

}  // namespace

int main() {
  // One clipped tree, two storage engines.
  const workload::Dataset2 data = workload::MakePar02(60'000);
  auto tree =
      rtree::BuildTree<2>(rtree::Variant::kHilbert, data.items, data.domain);
  tree->EnableClipping(core::ClipConfig<2>::Sta());

  const char* path = "/tmp/clipbb_unified_example.pages";
  if (!rtree::WritePagedTree<2>(*tree, path)) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  rtree::PagedRTree<2> paged;
  if (!paged.Open(path)) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }

  const rtree::SpatialEngine<2> memory(*tree);
  const rtree::SpatialEngine<2> disk(paged);

  // The same five specs run against both backends.
  const geom::Vec2 probe = data.domain.Center();
  const geom::Rect2 window{{0.30, 0.30}, {0.34, 0.34}};
  const std::vector<rtree::QuerySpec<2>> specs = {
      rtree::QuerySpec<2>::Intersects(window),
      rtree::QuerySpec<2>::ContainsPoint(probe),
      rtree::QuerySpec<2>::ContainedIn(window),
      rtree::QuerySpec<2>::Encloses({{0.320, 0.320}, {0.321, 0.321}}),
      rtree::QuerySpec<2>::Knn(probe, 8),
  };

  std::printf("one QuerySpec surface, two engines (%s):\n", tree->Name());
  for (const auto& spec : specs) {
    Show(rtree::QueryKindName(spec.kind), memory, spec);
    Show(rtree::QueryKindName(spec.kind), disk, spec);
  }

  // Sinks: collect ids, count without materializing, stream kNN.
  std::vector<rtree::ObjectId> ids;
  rtree::CollectIds<2> collect(&ids);
  memory.Execute(specs[0], &collect);
  rtree::CountOnly<2> counter;
  disk.Execute(specs[0], &counter);
  if (ids.size() != counter.count()) {
    std::fprintf(stderr, "PARITY FAILURE: %zu vs %zu\n", ids.size(),
                 counter.count());
    return 1;
  }
  std::printf("sinks agree across engines: %zu intersecting objects\n",
              ids.size());

  std::vector<rtree::KnnNeighbor<2>> nn;
  rtree::KnnHeapSink<2> nn_sink(&nn);
  disk.Execute(specs[4], &nn_sink);
  std::printf("8-NN of the domain center (disk-resident):");
  for (const auto& n : nn) {
    std::printf(" #%lld", static_cast<long long>(n.id));
  }
  std::printf("\n");

  // A callback sink streams matches with no storage at all.
  size_t streamed = 0;
  auto cb = rtree::MakeCallbackSink<2>([&](rtree::ObjectId) { ++streamed; });
  memory.Execute(specs[2], &cb);
  std::printf("callback sink streamed %zu contained objects\n", streamed);

  // The batch path: all five specs in one ExecuteBatch per engine — the
  // Hilbert-scheduled, scratch-reusing hot path, for any mix of kinds.
  const auto mem_batch =
      memory.ExecuteBatch(std::span<const rtree::QuerySpec<2>>(specs));
  const auto disk_batch =
      disk.ExecuteBatch(std::span<const rtree::QuerySpec<2>>(specs));
  if (mem_batch.counts != disk_batch.counts) {
    std::fprintf(stderr, "BATCH PARITY FAILURE\n");
    return 1;
  }
  std::printf("batched: identical per-spec counts; memory leaf reads %llu, "
              "disk leaf reads %llu + %llu physical page reads\n",
              static_cast<unsigned long long>(mem_batch.io.leaf_accesses),
              static_cast<unsigned long long>(disk_batch.io.leaf_accesses),
              static_cast<unsigned long long>(disk_batch.io.page_reads));

  paged.Close();
  std::remove(path);
  std::remove(rtree::WalPathFor(path).c_str());
  return 0;
}
