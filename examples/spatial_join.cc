// Spatial join scenario (§V-C): find all (axon, dendrite) segment pairs
// that touch — the "synapse candidate" join from the paper's neuroscience
// use case — with both join strategies, clipped and unclipped.
#include <cstdio>

#include "join/inlj.h"
#include "join/stt.h"
#include "rtree/factory.h"
#include "workload/dataset.h"

using namespace clipbb;  // NOLINT: example brevity

int main() {
  const auto axons = workload::MakeAxo03(120'000);
  const auto dendrites = workload::MakeDen03(60'000);
  std::printf("join: %zu axon segments x %zu dendrite segments\n",
              axons.size(), dendrites.size());

  // Index the larger dataset; both strategies need it, STT needs both.
  auto axon_tree = rtree::BuildTree<3>(rtree::Variant::kRRStar, axons.items,
                                       axons.domain);
  auto dendrite_tree = rtree::BuildTree<3>(rtree::Variant::kRRStar,
                                           dendrites.items, dendrites.domain);

  auto report = [](const char* label, const join::JoinStats& s) {
    std::printf("%-28s pairs=%zu leafAcc=%llu\n", label, s.result_pairs,
                static_cast<unsigned long long>(s.TotalLeafAccesses()));
  };

  // Unclipped baselines.
  report("INLJ (plain)", join::IndexNestedLoopJoin<3>(*axon_tree,
                                                      dendrites.items));
  report("STT  (plain)",
         join::SynchronizedTreeTraversal<3>(*axon_tree, *dendrite_tree));

  // Clip both indexes with stairline points and repeat: same pairs, fewer
  // leaf reads; STT needs far fewer accesses overall (paper §V-C).
  axon_tree->EnableClipping(core::ClipConfig<3>::Sta());
  dendrite_tree->EnableClipping(core::ClipConfig<3>::Sta());
  report("INLJ (CSTA-clipped)", join::IndexNestedLoopJoin<3>(
                                    *axon_tree, dendrites.items));
  report("STT  (CSTA-clipped)",
         join::SynchronizedTreeTraversal<3>(*axon_tree, *dendrite_tree));
  return 0;
}
