// Geometry playground: compares every bounding shape in the library on a
// node's worth of objects — the Fig. 8 experiment as a reusable tool.
// Pass an optional seed to explore different layouts.
#include <cstdio>
#include <cstdlib>

#include "core/clip_builder.h"
#include "geom/bounding.h"
#include "geom/union_volume.h"
#include "util/rng.h"

using namespace clipbb;  // NOLINT: example brevity

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  Rng rng(seed);

  // A node's worth of elongated objects (street-segment-like).
  std::vector<geom::Rect2> objects;
  for (int i = 0; i < 12; ++i) {
    const double cx = rng.Uniform(), cy = rng.Uniform();
    const bool horizontal = rng.Uniform() < 0.5;
    const double len = rng.Uniform(0.05, 0.25), w = rng.Uniform(0.002, 0.01);
    objects.push_back(horizontal
                          ? geom::Rect2{{cx, cy}, {cx + len, cy + w}}
                          : geom::Rect2{{cx, cy}, {cx + w, cy + len}});
  }
  const double occupied = geom::UnionArea(objects);

  std::printf("%-8s %8s %12s\n", "shape", "#points", "dead space");
  for (auto kind :
       {geom::BoundingKind::kMbc, geom::BoundingKind::kMbb,
        geom::BoundingKind::kRmbb, geom::BoundingKind::kC4,
        geom::BoundingKind::kC5, geom::BoundingKind::kCh}) {
    const auto s = geom::ComputeBounding(kind, objects);
    std::printf("%-8s %8.1f %11.1f%%\n", geom::BoundingKindName(kind),
                s.num_points, 100.0 * (1.0 - occupied / s.area));
  }

  const geom::Rect2 mbb =
      geom::BoundingRect<2>(objects.begin(), objects.end());
  for (auto mode : {core::ClipMode::kSkyline, core::ClipMode::kStairline}) {
    core::ClipConfig<2> cfg;
    cfg.mode = mode;
    const auto clips = core::BuildClips<2>(mbb, objects, cfg);
    std::vector<geom::Rect2> regions;
    for (const auto& c : clips) {
      regions.push_back(core::ClipRegion<2>(mbb, c));
    }
    const double area = mbb.Volume() - geom::UnionArea(regions);
    std::printf("%-8s %8.1f %11.1f%%\n", core::ClipModeName(mode),
                2.0 + static_cast<double>(clips.size()),
                100.0 * (1.0 - occupied / area));
  }
  return 0;
}
