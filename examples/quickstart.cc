// Quickstart: build a clipped R*-tree over synthetic boxes, run a few
// range queries, and compare I/O with and without clipping.
//
//   $ ./examples/quickstart
//
// Walks through the whole public API surface in ~60 lines.
#include <cstdio>

#include "rtree/factory.h"
#include "workload/dataset.h"
#include "workload/query.h"

using namespace clipbb;  // NOLINT: example brevity

int main() {
  // 1. Generate a deterministic synthetic dataset: 100k 2d boxes with
  //    heavy-tailed sizes (the paper's par02 workload).
  const workload::Dataset2 data = workload::MakePar02(100'000);
  std::printf("dataset %s: %zu objects\n", data.name.c_str(), data.size());

  // 2. Build an R*-tree by one-by-one insertion.
  auto tree =
      rtree::BuildTree<2>(rtree::Variant::kRStar, data.items, data.domain);
  std::printf("%s: %zu nodes, height %d\n", tree->Name(), tree->NumNodes(),
              tree->Height());

  // 3. Generate a calibrated query workload (~10 results per query).
  const auto queries = workload::MakeQueries<2>(data, /*target=*/10.0,
                                                /*num_queries=*/500);

  // 4. Run the queries unclipped and count leaf-page reads.
  storage::IoStats plain;
  size_t results = 0;
  for (const auto& q : queries.queries) {
    results += tree->RangeCount(q, &plain);
  }
  std::printf("unclipped: %zu results, %llu leaf accesses\n", results,
              static_cast<unsigned long long>(plain.leaf_accesses));

  // 5. Clip the tree (stairline mode, paper defaults k=2^(d+1), tau=2.5%)
  //    and run the same queries: identical results, fewer page reads.
  tree->EnableClipping(core::ClipConfig<2>::Sta());
  storage::IoStats clipped;
  size_t clipped_results = 0;
  for (const auto& q : queries.queries) {
    clipped_results += tree->RangeCount(q, &clipped);
  }
  std::printf("CSTA-clipped: %zu results, %llu leaf accesses (%.1f%% saved)\n",
              clipped_results,
              static_cast<unsigned long long>(clipped.leaf_accesses),
              100.0 * (1.0 - static_cast<double>(clipped.leaf_accesses) /
                                 static_cast<double>(plain.leaf_accesses)));

  // 6. The clip table is a small auxiliary structure.
  std::printf("clip table: %zu clip points, %.2f KiB\n",
              tree->clip_index().TotalClipPoints(),
              tree->clip_index().ByteSize() / 1024.0);
  return clipped_results == results ? 0 : 1;
}
