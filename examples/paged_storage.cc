// Paged storage engine: dump a clipped R-tree to a page file, reopen it
// disk-resident, serve range / kNN queries through the buffer pool —
// counting real page reads instead of logical accesses — then reopen it
// READ-WRITE and update it in place under WAL protection.
//
//   $ ./examples/example_paged_storage
//
// Demonstrates: WritePagedTree, PagedRTree::Open (clip table loaded
// memory-resident, node pages on disk), query parity with the in-memory
// tree, cold-vs-warm pool behaviour, and a read-write Open (in-place
// page updates, free-page map, write-ahead log, checkpoint).
#include <cstdio>

#include "rtree/factory.h"
#include "rtree/paged_rtree.h"
#include "rtree/query_api.h"
#include "stats/tree_report.h"
#include "workload/dataset.h"
#include "workload/query.h"

using namespace clipbb;  // NOLINT: example brevity

int main() {
  // 1. Build and clip a tree exactly as in quickstart.
  const workload::Dataset2 data = workload::MakePar02(100'000);
  auto tree =
      rtree::BuildTree<2>(rtree::Variant::kHilbert, data.items, data.domain);
  tree->EnableClipping(core::ClipConfig<2>::Sta());
  std::printf("%s: %zu nodes, height %d, %zu clip points\n", tree->Name(),
              tree->NumNodes(), tree->Height(),
              tree->clip_index().TotalClipPoints());

  // 2. Dump it to a page file: one packed page per node (entries SoA +
  //    inline clip run), plus a spill section for runs that don't fit.
  const char* path = "/tmp/clipbb_example.pages";
  if (!rtree::WritePagedTree<2>(*tree, path)) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }

  // 3. Reopen disk-resident. The buffer pool holds 10 % of the node pages;
  //    the clip table is loaded memory-resident by one sequential scan
  //    (the paper's §V-C assumption).
  rtree::PagedRTree<2> paged;
  if (!paged.Open(path)) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::printf("opened: %zu node pages of %u bytes, pool %zu frames\n",
              paged.NumNodes(), paged.superblock().file_page_size,
              paged.pool().capacity());

  // 4. Same queries against both trees: identical results, but the paged
  //    tree reports physical page reads.
  const auto queries = workload::MakeQueries<2>(data, /*target=*/10.0,
                                                /*num_queries=*/500);
  storage::IoStats mem_io, disk_io;
  size_t mem_results = 0, disk_results = 0;
  for (const auto& q : queries.queries) {
    mem_results += tree->RangeCount(q, &mem_io);
    disk_results += paged.RangeCount(q, &disk_io);
  }
  std::printf("in-memory:     %zu results | %s\n", mem_results,
              stats::FormatIoStats(mem_io).c_str());
  std::printf("disk-resident: %zu results | %s\n", disk_results,
              stats::FormatIoStats(disk_io).c_str());
  if (mem_results != disk_results) {
    std::fprintf(stderr, "PARITY FAILURE\n");
    return 1;
  }

  // 5. Pool misses are schedule-dependent: the Hilbert-ordered batch path
  //    visits overlapping subtrees consecutively, so the same workload
  //    faults in far fewer pages than the arbitrary input order above.
  //    The unified query API (SpatialEngine) fronts the paged tree here.
  const rtree::SpatialEngine<2> engine(paged);
  const auto batch = engine.ExecuteBatch(
      std::span<const geom::Rect2>(queries.queries));
  std::printf("hilbert batch: %llu page reads (input order did %llu)\n",
              static_cast<unsigned long long>(batch.io.page_reads),
              static_cast<unsigned long long>(disk_io.page_reads));

  // 6. kNN runs disk-resident too — results stream into a sink.
  const geom::Vec2 center = data.domain.Center();
  std::vector<rtree::KnnNeighbor<2>> nn;
  rtree::KnnHeapSink<2> nn_sink(&nn);
  engine.Execute(rtree::QuerySpec<2>::Knn(center, 5), &nn_sink);
  std::printf("5-NN of the domain center: ");
  for (const auto& n : nn) std::printf("#%lld ", static_cast<long long>(n.id));
  std::printf("\n");

  // 7. Reopen read-write: a fresh variant instance becomes the memory
  //    mirror and Insert/Delete mutate the pages in place — page reads
  //    are the update path's pool faults, every change is WAL-protected,
  //    and a crash at any point would recover to the last commit.
  paged.Close();
  rtree::PagedRTree<2> writer;
  rtree::PagedRTree<2>::OpenOptions wopts;
  wopts.mode = rtree::PagedRTree<2>::OpenMode::kReadWrite;
  if (!writer.Open(path, wopts,
                   rtree::MakeRTree<2>(rtree::Variant::kHilbert,
                                       data.domain))) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }
  for (int i = 0; i < 1000; ++i) {
    writer.Delete(data.items[i].rect, data.items[i].id);
  }
  for (int i = 0; i < 500; ++i) {
    geom::Rect2 r = data.items[i].rect;  // re-insert half, fresh ids
    writer.Insert(r, 200'000 + i);
  }
  writer.Checkpoint();
  std::printf(
      "updated in place: %zu objects, %zu free pages pooled for reuse | "
      "%s\n",
      writer.NumObjects(), writer.free_map().FreeCount(),
      stats::FormatIoStats(writer.update_io()).c_str());
  writer.Close();

  // A cold reopen serves the updated tree straight from the pages.
  rtree::PagedRTree<2> reopened;
  if (!reopened.Open(path) || reopened.NumObjects() != 99'500) {
    std::fprintf(stderr, "REOPEN FAILURE\n");
    return 1;
  }
  std::printf("reopened after updates: %zu objects, %llu nodes\n",
              reopened.NumObjects(),
              static_cast<unsigned long long>(reopened.NumNodes()));

  std::remove(path);
  std::remove(rtree::WalPathFor(path).c_str());
  return 0;
}
