// Domain scenario from the paper's motivation: indexing neuroscience
// meshes (Human Brain Project). Axon segments are long, skinny 3d boxes
// whose MBBs are ~95 % dead space; clipping recovers most of the wasted
// filtering precision. This example builds the state-of-the-art RR*-tree
// over an axon-like dataset, reports dead space, and shows how range
// queries (e.g. "which segments pass near this probe?") get cheaper.
#include <cstdio>

#include "rtree/factory.h"
#include "stats/node_stats.h"
#include "workload/dataset.h"
#include "workload/query.h"

using namespace clipbb;  // NOLINT: example brevity

int main() {
  const workload::Dataset3 axons = workload::MakeAxo03(150'000);
  std::printf("axon segments: %zu\n", axons.size());

  auto tree =
      rtree::BuildTree<3>(rtree::Variant::kRRStar, axons.items, axons.domain);

  // How bad are plain MBBs here? (paper Fig. 1b: ~94 % dead space)
  stats::SpaceOptions sopts;
  sopts.max_nodes = 512;
  sopts.mc_samples = 4096;
  const auto space = stats::MeasureSpace<3>(*tree, sopts);
  std::printf("%s: avg dead space per node = %.1f%%\n", tree->Name(),
              100.0 * space.avg_dead_fraction);

  // Probe queries: small boxes around random tissue locations that should
  // touch only a handful of segments (the paper's QR0/QR1 profiles).
  for (double target : {1.0, 10.0}) {
    const auto queries = workload::MakeQueries<3>(axons, target, 400);

    tree->DisableClipping();
    storage::IoStats plain;
    size_t results = 0;
    for (const auto& q : queries.queries) {
      results += tree->RangeCount(q, &plain);
    }

    tree->EnableClipping(core::ClipConfig<3>::Sta());
    storage::IoStats clipped;
    size_t clipped_results = 0;
    for (const auto& q : queries.queries) {
      clipped_results += tree->RangeCount(q, &clipped);
    }
    if (clipped_results != results) {
      std::printf("ERROR: clipped results diverge!\n");
      return 1;
    }
    std::printf(
        "~%.0f-result probes: leaf I/O %llu -> %llu (%.1f%% saved), "
        "%zu results identical\n",
        target, static_cast<unsigned long long>(plain.leaf_accesses),
        static_cast<unsigned long long>(clipped.leaf_accesses),
        100.0 * (1.0 - static_cast<double>(clipped.leaf_accesses) /
                           static_cast<double>(plain.leaf_accesses)),
        results);
  }

  // How much of the dead space did the stairline CBB eliminate?
  const auto clip_report =
      stats::MeasureClipping<3>(*tree, core::ClipConfig<3>::Sta(), sopts);
  std::printf(
      "CSTA clipping removes %.1f%% of node volume (= %.0f%% of the dead "
      "space) with %.1f clip points/node\n",
      100.0 * clip_report.avg_clipped_fraction,
      100.0 * clip_report.clipped_share_of_dead(),
      clip_report.avg_clip_points);
  return 0;
}
